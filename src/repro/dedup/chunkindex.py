"""The content-addressed frame index layered on :class:`FrameAllocator`.

``ChunkIndex`` maps a 63-bit content code — the simulator's sha256(page
bytes) — to the single CXL frame holding that content, plus a per-frame
**sharer count**: how many live checkpoints claim the chunk.  It holds no
frame references itself; callers pair every ``adopt`` with the
``fabric.get_frames`` reference the adopting checkpoint takes, so the
allocator's refcounts stay the one source of truth and ``audit_pod`` can
cross-check the index against the checkpoint census.

Codes are derived with sha256 over canonical content identities and
truncated to 63 bits so whole page tables of them fit in vectorized
``int64`` arrays (the same truncation a real implementation would apply to
fit a hash into a PTE-sized slot; collisions at 2^63 are below the
simulator's horizon).  Code ``0`` (:data:`NO_CODE`) is reserved as the
"no content recorded" sentinel.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Sentinel code meaning "no content recorded for this page".
NO_CODE = 0

_MASK63 = np.uint64(0x7FFF_FFFF_FFFF_FFFF)
_MIX_PRIME = np.uint64(0x9E37_79B9_7F4A_7C15)


def _h63(*parts) -> int:
    """sha256 over a canonical string, truncated to a nonzero 63-bit int."""
    digest = hashlib.sha256(":".join(str(p) for p in parts).encode()).digest()
    code = int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF
    return code or 1


def _mix(base: int, values: np.ndarray) -> np.ndarray:
    """Spread a sha256-derived base over an int64 value array (vectorized)."""
    v = np.asarray(values, dtype=np.int64).astype(np.uint64)
    h = np.uint64(base) + v * _MIX_PRIME
    h ^= h >> np.uint64(29)
    h &= _MASK63
    h = np.where(h == np.uint64(0), np.uint64(1), h)
    return h.astype(np.int64)


@dataclass
class DedupStats:
    """Lifetime counters for one index (one CXL fabric)."""

    #: Seal-time index hits: pages that resolved to an existing frame.
    hits: int = 0
    #: Seal-time misses: pages that allocated (and registered) a new frame.
    misses: int = 0
    #: Zero pages elided from checkpoints instead of stored (the degenerate
    #: chunk: restore faults them demand-zero, no frame ever holds them).
    zero_elided: int = 0
    #: Frames moved by RAS repair (``repoint``).
    repointed: int = 0
    #: Replication: chunks the destination already held (not re-shipped).
    wire_chunks_deduped: int = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _Entry:
    code: int
    frame: int
    sharers: int = 1


class ChunkIndex:
    """Content code -> frame id, with per-frame checkpoint sharer counts."""

    #: Monotonic per-process instance counter.  Gives each index a distinct
    #: ``origin`` so private/frame codes from different pods never collide
    #: by construction.  Deterministic: pods are built in program order, and
    #: no experiment result may depend on the *absolute* origin value (only
    #: on code equality, which origins preserve).
    _instances = 0

    def __init__(self, fabric) -> None:
        ChunkIndex._instances += 1
        self.origin = ChunkIndex._instances
        self.fabric = fabric
        self._frame_by_code: dict[int, int] = {}
        self._code_by_frame: dict[int, int] = {}
        self._sharers: dict[int, int] = {}
        self._serial = 0
        self.stats = DedupStats()
        # Sorted (frames, codes) arrays for vectorized codes_for; rebuilt
        # lazily after any register/release/repoint.
        self._lookup_cache: Optional[tuple[np.ndarray, np.ndarray]] = None
        #: Repoint epoch: bumped whenever chunk content moves between
        #: frames under a live image (RAS repair).  The restore-plan cache
        #: (:mod:`repro.rfork.restoreplan`) keys plans by this counter so
        #: a repoint invalidates every memoized frame/attach array.
        self.epoch = 0

    # -- code derivation ---------------------------------------------------------

    def file_codes(self, path: str, pgoffs: np.ndarray) -> np.ndarray:
        """Codes for pristine file pages.  Keyed by ``(path, pgoff)`` only —
        no origin — because pristine file content is globally identical, so
        these chunks dedup across checkpoints, functions, and pods."""
        return _mix(_h63("file", path), pgoffs)

    def frame_codes(self, frames: np.ndarray) -> np.ndarray:
        """Codes for resident CXL frames the index has never seen (a
        checkpoint sealed before dedup was enabled).  Frame content is
        immutable while referenced, so frame identity is content identity —
        within this fabric, hence the origin in the key."""
        return _mix(_h63("frame", self.origin), frames)

    def private_codes(self, count: int) -> np.ndarray:
        """Fresh codes for pages with no provable content identity.  Each is
        unique (monotonic serial per index), so private content never
        falsely aliases; the cost is that it never dedups either."""
        codes = _mix(_h63("priv", self.origin),
                     np.arange(self._serial, self._serial + count))
        self._serial += count
        return codes

    # -- the map -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._frame_by_code)

    def lookup(self, code: int) -> Optional[int]:
        """Frame holding ``code``'s content, or None.  A poisoned frame is
        reported as a miss: new checkpoints must never adopt corrupt
        content (existing sharers are RAS's problem, not ours)."""
        frame = self._frame_by_code.get(int(code))
        if frame is None:
            return None
        if self.fabric.device.frames.is_poisoned(frame):
            return None
        return frame

    def adopt(self, frame: int) -> None:
        """A checkpoint claims an existing chunk: bump the sharer count and
        take the fabric reference the checkpoint will hold."""
        frame = int(frame)
        self._sharers[frame] += 1
        self.fabric.get_frames(np.array([frame], dtype=np.int64))
        self.stats.hits += 1

    def register(self, code: int, frame: int) -> None:
        """Record a freshly sealed chunk (the caller allocated ``frame`` and
        already holds its reference).  First-writer-wins: if ``code`` is
        already mapped (a poisoned entry being superseded, or a duplicate
        within one seal), the existing mapping stands and ``frame`` simply
        stays a private, unindexed copy."""
        code = int(code)
        frame = int(frame)
        if code == NO_CODE or code in self._frame_by_code:
            return
        self._frame_by_code[code] = frame
        self._code_by_frame[frame] = code
        self._sharers[frame] = 1
        self._lookup_cache = None
        self.stats.misses += 1

    def release(self, frames: np.ndarray) -> None:
        """Drop one sharer from every indexed frame in ``frames`` (a
        checkpoint is being deleted).  Unindexed frames are skipped; an
        entry whose sharer count reaches zero is evicted.  Callers still
        drop the fabric references separately (checkpoint ``delete()``
        already does)."""
        for frame in np.unique(np.asarray(frames, dtype=np.int64)):
            frame = int(frame)
            code = self._code_by_frame.get(frame)
            if code is None:
                continue
            remaining = self._sharers[frame] - 1
            if remaining > 0:
                self._sharers[frame] = remaining
                continue
            del self._sharers[frame]
            del self._code_by_frame[frame]
            # Guard: a superseded (poisoned) entry may have been remapped.
            if self._frame_by_code.get(code) == frame:
                del self._frame_by_code[code]
            self._lookup_cache = None

    def repoint(self, old: int, new: int) -> None:
        """RAS repair moved a chunk's content to a fresh frame: transfer the
        registration and sharer count from ``old`` to ``new``."""
        old, new = int(old), int(new)
        code = self._code_by_frame.pop(old, None)
        if code is None:
            return
        self._code_by_frame[new] = code
        if self._frame_by_code.get(code) == old:
            self._frame_by_code[code] = new
        self._sharers[new] = self._sharers.pop(old)
        self._lookup_cache = None
        self.epoch += 1
        self.stats.repointed += 1

    # -- queries -----------------------------------------------------------------

    def code_of(self, frame: int) -> int:
        """The content code registered for ``frame`` (NO_CODE if unindexed)."""
        return self._code_by_frame.get(int(frame), NO_CODE)

    def codes_for(self, frames: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`code_of` (NO_CODE where unindexed)."""
        frames = np.asarray(frames, dtype=np.int64)
        if not self._code_by_frame or frames.size == 0:
            return np.zeros(frames.shape, dtype=np.int64)
        cache = self._lookup_cache
        if cache is None:
            keys = np.fromiter(self._code_by_frame.keys(), dtype=np.int64,
                               count=len(self._code_by_frame))
            vals = np.fromiter(self._code_by_frame.values(), dtype=np.int64,
                               count=len(self._code_by_frame))
            order = np.argsort(keys)
            cache = (keys[order], vals[order])
            self._lookup_cache = cache
        keys, vals = cache
        idx = np.searchsorted(keys, frames)
        idx = np.clip(idx, 0, keys.size - 1)
        out = np.where(keys[idx] == frames, vals[idx], np.int64(NO_CODE))
        return out.astype(np.int64)

    def missing_codes(self, codes: np.ndarray) -> np.ndarray:
        """The unique codes in ``codes`` this index cannot serve (unindexed
        or poisoned).  The delta-replication missing-set: only these chunks'
        page payloads need to traverse the interconnect."""
        uniq = np.unique(np.asarray(codes, dtype=np.int64))
        uniq = uniq[uniq != NO_CODE]
        miss = [c for c in uniq.tolist() if self.lookup(c) is None]
        return np.asarray(miss, dtype=np.int64)

    def sharer_count(self, frame: int) -> int:
        return self._sharers.get(int(frame), 0)

    def registered_frames(self) -> np.ndarray:
        return np.fromiter(self._code_by_frame.keys(), dtype=np.int64,
                           count=len(self._code_by_frame))

    def wrong_frame_for(self, code: int) -> Optional[int]:
        """A deterministic *different* chunk frame (the ``alias-wrong-chunk``
        seeded mutation maps a page into the wrong hash bucket)."""
        for frame, frame_code in self._code_by_frame.items():
            if frame_code != int(code):
                return frame
        return None

    # -- consistency -------------------------------------------------------------

    def audit(self, checkpoints) -> list[str]:
        """Cross-check sharer counts against the live checkpoint census.

        Every registered frame's sharer count must equal the number of
        live checkpoints listing it (cxlfork ``data_frames``, criu-cxl
        ``chunk_frames``); the two directional maps must agree.  Returns
        human-readable mismatch descriptions (empty = consistent).
        """
        problems: list[str] = []
        for code, frame in self._frame_by_code.items():
            if self._code_by_frame.get(frame) != code:
                problems.append(
                    f"chunk map asymmetry: code {code} -> frame {frame} "
                    f"but frame maps to {self._code_by_frame.get(frame)}"
                )
        census: dict[int, int] = {}
        for ckpt in checkpoints:
            if getattr(ckpt, "_deleted", False):
                continue
            frames = getattr(ckpt, "data_frames", None)
            if frames is None:
                frames = getattr(ckpt, "chunk_frames", None)
            if frames is None or not len(frames):
                continue
            for frame in np.asarray(frames, dtype=np.int64):
                frame = int(frame)
                if frame in self._code_by_frame:
                    census[frame] = census.get(frame, 0) + 1
        for frame, sharers in self._sharers.items():
            owned = census.get(frame, 0)
            if owned != sharers:
                problems.append(
                    f"chunk frame {frame} (code {self._code_by_frame[frame]}): "
                    f"{sharers} recorded sharers but {owned} live checkpoint(s) "
                    "list it"
                )
        for frame in census:
            if frame not in self._sharers:
                problems.append(
                    f"frame {frame} is indexed but has no sharer record"
                )
        return problems


__all__ = ["ChunkIndex", "DedupStats", "NO_CODE", "_h63", "_mix"]
