"""Content-addressed checkpoint storage for the CXL pool (§2.2 density).

CXLfork's clones of *one* checkpoint already share frames; this package
extends the sharing across *different* checkpoints.  A per-fabric
:class:`~repro.dedup.chunkindex.ChunkIndex` maps a content code — the
simulator's stand-in for sha256(page bytes) — to the one physical frame
holding that content, with a per-frame sharer count.  Checkpoint seal
(cxlfork and criu-cxl) consults the index: a page whose content is already
resident resolves to the existing frame instead of a private copy, a page
that is all zeroes is elided entirely, and copy-on-write breaks a shared
frame out for a writing child exactly as it does today.

Like :data:`repro.ras.RAS`, deduplication is a module-level runtime switch
(:data:`DEDUP`), but it defaults **off** and is *not* coupled to
``CHECK.enabled``: the bench baselines pin dedup-off results bit-identical
to the pre-dedup tree, and experiments opt in per run.

Content codes
-------------

The simulator models page *content* as oracle labels, not bytes (see
:mod:`repro.check.oracle`), so the "hash of the page" is derived from the
same ground truth the oracle checks against:

* a page already resident in an indexed CXL frame inherits that frame's
  code (re-checkpoints after seasoning share almost everything);
* a checkpoint-backed page realized locally by a read fault inherits the
  backing checkpoint's code for that vpn (same bytes, different frame);
* a provably file-pristine page (``FILE_PRIVATE``, never hardware-writable,
  never dirtied — the same predicate CRIU's dump uses) hashes its
  ``(path, pgoff)``, so independent checkpoints of the same function share
  their library and initialization-file images;
* everything else gets a fresh private code — conservative (two
  independently seasoned anonymous heaps never alias) but *sound*: a
  shared frame is never claimed for content the oracle could distinguish.

Non-present pages in anonymous mappings are the zero-page class: they are
structurally elided from every checkpoint (restore faults them demand-zero)
and counted, never stored — the degenerate chunk whose refcount is the
whole pod.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.dedup.chunkindex import NO_CODE, ChunkIndex, DedupStats


class DedupRuntime:
    """Process-wide switch for content-addressed checkpoint storage.

    Mirrors :class:`repro.ras.RasRuntime` (``enable``/``disable``/
    ``reset``/``force``), but defaults off and never piggybacks on the
    checker: dedup changes *placement*, and the committed bench digests
    pin the dedup-off placement bit-for-bit.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._forced: Optional[bool] = None

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.enabled = False
        self._forced = None

    def active(self) -> bool:
        if self._forced is not None:
            return self._forced
        return self.enabled

    @contextmanager
    def force(self, value: bool) -> Iterator[None]:
        """Pin dedup on/off for a scope, overriding ``enabled``."""
        previous = self._forced
        self._forced = value
        try:
            yield
        finally:
            self._forced = previous


#: The process-wide dedup switch (default off; see class docstring).
DEDUP = DedupRuntime()


__all__ = ["DEDUP", "DedupRuntime", "ChunkIndex", "DedupStats", "NO_CODE"]
