"""Command-line entry point: run any experiment by name.

Usage::

    python -m repro list
    python -m repro run fig7
    python -m repro run fig10 --fast
    python -m repro run fig7 --check
    python -m repro run fig7 --jobs 8
    python -m repro trace fig6 [-o trace.json] [--jsonl spans.jsonl]
    python -m repro report [--full] [-o report.md]
    python -m repro bench [--quick] [--update] [fig7 fig3 ...]
    python -m repro check [--seed 0] [--steps 60] [--scenarios 4]
"""

from __future__ import annotations

import argparse
import sys

#: Experiment name -> (module path, description).
EXPERIMENTS = {
    "table1": ("repro.experiments.table1", "Table 1: evaluation functions"),
    "fig1": ("repro.experiments.fig1_footprint", "Fig. 1: footprint breakdown"),
    "fig3": ("repro.experiments.fig3_motivation", "Fig. 3c: motivation on BERT"),
    "fig6": ("repro.experiments.fig6_coldstart", "Fig. 6: cold-start anatomy"),
    "fig7": ("repro.experiments.fig7_performance", "Fig. 7: rfork performance"),
    "fig8": ("repro.experiments.fig8_tiering", "Fig. 8: tiering policies"),
    "fig9": ("repro.experiments.fig9_sensitivity", "Fig. 9: latency sweep"),
    "fig10": ("repro.experiments.fig10_porter", "Fig. 10: CXLporter"),
    "checkpoint": ("repro.experiments.checkpoint_perf", "§7.1: checkpoint perf"),
    "failure": ("repro.experiments.failure", "Extension: node failure"),
    "failure-sweep": (
        "repro.experiments.failure_sweep",
        "Extension: crash-timing sweep (survival, recovery, leak audit)",
    ),
    "corruption-sweep": (
        "repro.experiments.corruption_sweep",
        "Extension: RAS poison sweep (detection, repair ladder, wrong-bytes)",
    ),
    "scalability": ("repro.experiments.scalability", "Extension: bandwidth scaling"),
    "keepalive": ("repro.experiments.keepalive_study", "Extension: keep-alive sweep"),
    "density": (
        "repro.experiments.density",
        "Extension: instances per memory budget + cross-checkpoint dedup",
    ),
    "write-heavy": ("repro.experiments.write_heavy", "Extension: write-heavy workloads"),
    "cluster-scale": (
        "repro.experiments.cluster_scale",
        "Extension: federated CXL pods vs one naive big pod (§8)",
    ),
}

#: Experiments whose CLI accepts ``--seed`` (the rest are deterministic
#: closed-form sweeps with nothing to reseed).
SEED_AWARE = {"cluster-scale", "corruption-sweep", "failure-sweep", "fig10"}

#: Experiments whose grid runs on the deterministic parallel executor
#: (``repro.parallel``): ``--jobs N`` shards their sweep points across N
#: shared-nothing worker processes with bit-identical merged results.
JOBS_AWARE = {
    "fig7", "fig10", "failure-sweep", "corruption-sweep", "cluster-scale",
    "scalability", "density",
}


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (_, description) in EXPERIMENTS.items():
        print(f"{name:<{width}}  {description}")
    return 0


def _cmd_run(
    name: str,
    fast: bool,
    check: bool = False,
    seed: int | None = None,
    jobs: int = 1,
) -> int:
    if check:
        from repro.check import CHECK

        CHECK.reset()
        CHECK.enable()
        try:
            status = _cmd_run(name, fast, check=False, seed=seed, jobs=jobs)
        finally:
            CHECK.disable()
        print(f"\n[check] {CHECK.summary()}")
        return status

    entry = EXPERIMENTS.get(name)
    if entry is None:
        print(f"unknown experiment {name!r}; `python -m repro list`",
              file=sys.stderr)
        return 2
    if seed is not None and name not in SEED_AWARE:
        print(f"experiment {name!r} does not take a seed "
              f"(seed-aware: {', '.join(sorted(SEED_AWARE))})",
              file=sys.stderr)
        return 2
    if jobs != 1 and name not in JOBS_AWARE:
        print(f"experiment {name!r} does not shard over --jobs "
              f"(jobs-aware: {', '.join(sorted(JOBS_AWARE))})",
              file=sys.stderr)
        return 2
    if jobs == 0:
        from repro.parallel import default_jobs

        jobs = default_jobs()
    module_path, _ = entry
    import importlib

    module = importlib.import_module(module_path)
    if name == "failure-sweep":
        from repro.experiments import failure_sweep

        argv = ["--quick"] if fast else []
        if seed is not None:
            argv += ["--seed", str(seed)]
        if jobs != 1:
            argv += ["--jobs", str(jobs)]
        return failure_sweep.main(argv)
    if name == "corruption-sweep":
        from repro.experiments import corruption_sweep

        argv = ["--quick"] if fast else []
        if seed is not None:
            argv += ["--seed", str(seed)]
        if jobs != 1:
            argv += ["--jobs", str(jobs)]
        return corruption_sweep.main(argv)
    if name == "cluster-scale":
        from repro.experiments import cluster_scale

        argv = ["--quick"] if fast else []
        if seed is not None:
            argv += ["--seed", str(seed)]
        if jobs != 1:
            argv += ["--jobs", str(jobs)]
        return cluster_scale.main(argv)
    if name == "density":
        from repro.experiments import density

        argv = ["--quick"] if fast else []
        if jobs != 1:
            argv += ["--jobs", str(jobs)]
        return density.main(argv)
    if name == "fig10":
        from repro.experiments import fig10_porter

        if not fast and seed is None:
            module.main(jobs=jobs)
            return 0
        config = fig10_porter.Fig10Config(
            **({"total_rps": 80, "duration_s": 8} if fast else {}),
            **({"seed": seed} if seed is not None else {}),
        )
        rows = fig10_porter.run(config, jobs=jobs)
        print(fig10_porter.format_rows([r for r in rows if r.function == "ALL"]))
        for key, value in fig10_porter.summarize(rows).items():
            print(f"{key:>40}: {value:.3f}")
        return 0
    if name in JOBS_AWARE:
        module.main(jobs=jobs)
        return 0
    module.main()
    return 0


def _cmd_trace(
    name: str,
    fast: bool,
    output: str | None,
    jsonl: str | None,
) -> int:
    """Run one experiment under tracing; export the trace + phase table."""
    from repro.analysis.report import format_phase_breakdown
    from repro.telemetry import TRACE, write_chrome_trace, write_jsonl

    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; `python -m repro list`",
              file=sys.stderr)
        return 2
    TRACE.reset()
    TRACE.enable()
    try:
        status = _cmd_run(name, fast)
    finally:
        TRACE.disable()
    if status != 0:
        return status
    trace_path = output if output is not None else f"trace-{name}.json"
    events = write_chrome_trace(trace_path, TRACE)
    print(f"\nwrote {trace_path} ({events} trace events; "
          "load in chrome://tracing or https://ui.perfetto.dev)")
    if jsonl is not None:
        lines = write_jsonl(jsonl, TRACE)
        print(f"wrote {jsonl} ({lines} records)")
    print("\nPhase breakdown (virtual time):\n")
    print(format_phase_breakdown(TRACE))
    return 0


def _cmd_report(full: bool, output: str | None) -> int:
    from repro.analysis.report import generate_report

    text = generate_report(fast=not full)
    if output:
        with open(output, "w") as handle:
            handle.write(text)
        print(f"wrote {output}")
    else:
        print(text)
    return 0


def main(argv=None) -> int:
    args_in = list(sys.argv[1:] if argv is None else argv)
    if args_in and args_in[0] == "bench":
        # The bench harness owns its argument parsing (it is also runnable
        # as benchmarks/harness.py from the repo root).
        from repro.bench import main as bench_main

        return bench_main(args_in[1:])
    if args_in and args_in[0] == "check":
        # The scenario fuzzer owns its argument parsing (see repro.check.fuzz).
        from repro.check.fuzz import main as check_main

        return check_main(args_in[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CXLfork reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment name (see `list`)")
    run_parser.add_argument("--fast", action="store_true",
                            help="reduced scale where supported")
    run_parser.add_argument("--check", action="store_true",
                            help="run under the repro.check differential "
                                 "oracle + invariant checker")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="trace seed (seed-aware experiments only)")
    run_parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes for sweep grids "
                                 "(0 = one per CPU; results are "
                                 "bit-identical to --jobs 1)")
    trace_parser = sub.add_parser(
        "trace", help="run one experiment under tracing; export a trace file"
    )
    trace_parser.add_argument("experiment", help="experiment name (see `list`)")
    trace_parser.add_argument("--fast", action="store_true",
                              help="reduced scale where supported")
    trace_parser.add_argument("-o", "--output", default=None,
                              help="Chrome trace-event JSON path "
                                   "(default: trace-<experiment>.json)")
    trace_parser.add_argument("--jsonl", default=None,
                              help="also write a JSONL span/metric dump here")
    sub.add_parser(
        "bench",
        help="wall-clock benchmark harness (handled above; see repro.bench)",
    )
    sub.add_parser(
        "check",
        help="differential-oracle scenario fuzzer (handled above; "
             "see repro.check.fuzz)",
    )
    report_parser = sub.add_parser("report", help="generate the full report")
    report_parser.add_argument("--full", action="store_true",
                               help="full-scale sweeps (slow)")
    report_parser.add_argument("-o", "--output", default=None,
                               help="write the report to a file")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.experiment, args.fast, args.check, args.seed, args.jobs
        )
    if args.command == "trace":
        return _cmd_trace(args.experiment, args.fast, args.output, args.jsonl)
    if args.command == "report":
        return _cmd_report(args.full, args.output)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
