"""Command-line entry point: run any experiment by name.

Usage::

    python -m repro list
    python -m repro run fig7
    python -m repro run fig10 --fast
    python -m repro report [--full] [-o report.md]
"""

from __future__ import annotations

import argparse
import sys

#: Experiment name -> (module path, description).
EXPERIMENTS = {
    "table1": ("repro.experiments.table1", "Table 1: evaluation functions"),
    "fig1": ("repro.experiments.fig1_footprint", "Fig. 1: footprint breakdown"),
    "fig3": ("repro.experiments.fig3_motivation", "Fig. 3c: motivation on BERT"),
    "fig6": ("repro.experiments.fig6_coldstart", "Fig. 6: cold-start anatomy"),
    "fig7": ("repro.experiments.fig7_performance", "Fig. 7: rfork performance"),
    "fig8": ("repro.experiments.fig8_tiering", "Fig. 8: tiering policies"),
    "fig9": ("repro.experiments.fig9_sensitivity", "Fig. 9: latency sweep"),
    "fig10": ("repro.experiments.fig10_porter", "Fig. 10: CXLporter"),
    "checkpoint": ("repro.experiments.checkpoint_perf", "§7.1: checkpoint perf"),
    "failure": ("repro.experiments.failure", "Extension: node failure"),
    "scalability": ("repro.experiments.scalability", "Extension: bandwidth scaling"),
    "keepalive": ("repro.experiments.keepalive_study", "Extension: keep-alive sweep"),
    "density": ("repro.experiments.density", "Extension: instances per memory budget"),
    "write-heavy": ("repro.experiments.write_heavy", "Extension: write-heavy workloads"),
}


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (_, description) in EXPERIMENTS.items():
        print(f"{name:<{width}}  {description}")
    return 0


def _cmd_run(name: str, fast: bool) -> int:
    entry = EXPERIMENTS.get(name)
    if entry is None:
        print(f"unknown experiment {name!r}; `python -m repro list`",
              file=sys.stderr)
        return 2
    module_path, _ = entry
    import importlib

    module = importlib.import_module(module_path)
    if fast and name == "fig10":
        from repro.experiments import fig10_porter

        config = fig10_porter.Fig10Config(total_rps=80, duration_s=8)
        rows = fig10_porter.run(config)
        print(fig10_porter.format_rows([r for r in rows if r.function == "ALL"]))
        for key, value in fig10_porter.summarize(rows).items():
            print(f"{key:>40}: {value:.3f}")
        return 0
    module.main()
    return 0


def _cmd_report(full: bool, output: str | None) -> int:
    from repro.analysis.report import generate_report

    text = generate_report(fast=not full)
    if output:
        with open(output, "w") as handle:
            handle.write(text)
        print(f"wrote {output}")
    else:
        print(text)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CXLfork reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment name (see `list`)")
    run_parser.add_argument("--fast", action="store_true",
                            help="reduced scale where supported")
    report_parser = sub.add_parser("report", help="generate the full report")
    report_parser.add_argument("--full", action="store_true",
                               help="full-scale sweeps (slow)")
    report_parser.add_argument("-o", "--output", default=None,
                               help="write the report to a file")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.fast)
    if args.command == "report":
        return _cmd_report(args.full, args.output)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
