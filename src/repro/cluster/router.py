"""The global router: two-level scheduling across federated CXL pods.

Level one picks a *pod* for each invocation; level two is the chosen
pod's own CXLporter, which picks a node exactly as it does standalone.
The router never reaches past the pod boundary — intra-pod placement,
keep-alive, tiering, and node failover all stay the pod's business
(§8's "global scheduler" sketched over the per-pod autoscaler of §5).

Pod choice weighs three signals, in deterministic join order:

* **locality** — a pod with an idle warm instance serves warm; a pod
  holding the checkpoint in its object store serves a CXL-local restore;
* **load** — instances running vs. aggregate CPU slots;
* **capacity** — free CXL bytes for new checkpoints / restores.

A request routed to a pod without the image either cold-starts there or,
under the pull-on-miss policy, triggers a mitosis-style ship-and-restore
*off* the critical path: the request itself is served by the pod that
holds the image while the image is pulled over the interconnect and
materialized into the chosen pod's object store, so every later
invocation routed there restores CXL-locally.

Failure handling composes the two levels: a pod whose porter gives up on
a request (node exhaustion, memory-retry exhaustion) offers it back via
the porter's ``drop_handler`` and the router re-routes it to another live
pod — up to ``max_reroutes`` times, so a globally-sick cluster still
terminates.  Whole-pod failures are detected by heartbeat at pod
granularity (:mod:`repro.cluster.membership`); routing with *no* live pod
left raises :class:`~repro.exceptions.FederationExhaustedError`, which is
deliberately distinct from a single pod's
:class:`~repro.exceptions.PodExhaustedError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.interconnect import Interconnect, LinkSpec
from repro.cluster.membership import PodHandle, PodMembership
from repro.cluster.replication import Replicator
from repro.exceptions import FederationExhaustedError
from repro.faas.traces import Request
from repro.porter.metrics import LatencyRecorder
from repro.sim.events import EventQueue
from repro.sim.units import MS, SEC
from repro.telemetry import TRACE

_REPLICATION_POLICIES = ("none", "pull", "push")


@dataclass
class RouterConfig:
    """Tunables of the federation layer."""

    #: Inter-pod link technology ("rdma", "ethernet", or a LinkSpec).
    link: "str | LinkSpec" = "rdma"
    #: When images cross pods: "none" (miss → cold start), "pull"
    #: (ship-and-restore on miss), "push" (eager fan-out at prewarm,
    #: plus pull on any remaining miss).
    replication: str = "pull"
    #: Pods (beyond the home pod) that eagerly receive each image under
    #: the push policy; 0 means push everywhere.
    push_fanout: int = 0
    #: Routing weights (score units are arbitrary; only order matters).
    warm_weight: float = 100.0
    locality_weight: float = 50.0
    load_weight: float = 20.0
    capacity_weight: float = 5.0
    suspect_penalty: float = 40.0
    #: RAS steering: a pod's poison rate folds into its pressure, scaled
    #: so 2% of the device poisoned reads as a fully loaded pod (the
    #: two-level scheduler then overflows away from the decaying device).
    poison_pressure_scale: float = 50.0
    #: Flat penalty for a detector-degraded pod, milder than suspect —
    #: degraded pods serve correctly (checksums + repair), they just
    #: should not win ties for new growth.
    degraded_penalty: float = 20.0
    #: Times a request may bounce between pods before its last pod
    #: records it as failed.
    max_reroutes: int = 2
    #: Pod-granularity heartbeat detection (off by default, like the
    #: porter's node detector, to keep fault-free schedules exact).
    failure_detection: bool = False
    heartbeat_interval_ns: int = int(500 * MS)
    heartbeat_miss_threshold: int = 3
    user: str = "tenant0"

    def __post_init__(self) -> None:
        if self.replication not in _REPLICATION_POLICIES:
            raise ValueError(
                f"replication must be one of {_REPLICATION_POLICIES}, "
                f"got {self.replication!r}"
            )
        if self.max_reroutes < 0:
            raise ValueError(f"max_reroutes must be >= 0: {self.max_reroutes}")
        if self.poison_pressure_scale < 0:
            raise ValueError(
                f"poison_pressure_scale must be >= 0: {self.poison_pressure_scale}"
            )
        if self.degraded_penalty < 0:
            raise ValueError(
                f"degraded_penalty must be >= 0: {self.degraded_penalty}"
            )


@dataclass
class RoutingStats:
    """Where requests went and why."""

    routed: int = 0
    warm_hits: int = 0
    locality_hits: int = 0
    misses: int = 0
    pulls: int = 0
    reroutes: int = 0
    per_pod: dict = field(default_factory=dict)


class ClusterRouter:
    """Routes a shared trace across many pods on one virtual timeline."""

    def __init__(
        self,
        pods: list,
        queue: EventQueue,
        *,
        config: Optional[RouterConfig] = None,
    ) -> None:
        if not pods:
            raise ValueError("a federation needs at least one pod")
        self.queue = queue
        self.config = config or RouterConfig()
        self.membership = PodMembership(
            queue,
            interval_ns=self.config.heartbeat_interval_ns,
            miss_threshold=self.config.heartbeat_miss_threshold,
            on_pod_dead=self._handle_pod_failure,
        )
        for pod in pods:
            if pod.porter is None:
                raise ValueError(f"pod {pod.name!r} has no porter deployment")
            if pod.porter.queue is not self.queue:
                raise ValueError(
                    f"pod {pod.name!r}'s porter runs on a different event "
                    "queue; federated pods must share the router's clock"
                )
            self.membership.join(pod)
            pod.porter.drop_handler = (
                lambda request, reason, p=pod: self._reroute(p, request, reason)
            )
        self.interconnect = Interconnect(self.config.link)
        self.replicator = Replicator(
            self.interconnect, queue, user=self.config.user
        )
        self.stats = RoutingStats(
            per_pod={pod.name: 0 for pod in pods}
        )
        self._reroutes: dict[int, int] = {}
        #: One-way router → pod dispatch latency (control message).
        self._dispatch_ns = int(self.interconnect.spec.latency_ns)

    # -- function lifecycle ------------------------------------------------------

    def register_function(self, workload) -> None:
        """Register on every pod (the trace may route anywhere)."""
        for pod in self.membership.pods():
            pod.porter.register_function(workload)

    def prewarm(self, function: str, *, home: Optional[str] = None):
        """Checkpoint ``function`` on its home pod; push replicas if the
        policy says so.  Returns the home pod's store entry."""
        pods = self.membership.pods()
        home_pod = self.membership.pod(home) if home is not None else pods[0]
        entry = home_pod.porter.prewarm_and_checkpoint(function)
        if self.config.replication == "push":
            targets = [p for p in self.membership.live_pods() if p is not home_pod]
            if self.config.push_fanout > 0:
                targets = targets[: self.config.push_fanout]
            for target in targets:
                self.replicator.ship(function, home_pod, target)
        return entry

    # -- routing -----------------------------------------------------------------

    def route(self, request: Request) -> PodHandle:
        """Pick the pod for one invocation (pure decision, no dispatch)."""
        live = self.membership.live_pods()
        if not live:
            raise FederationExhaustedError(
                "every pod in the federation is down"
            )
        best, best_score = None, None
        for pod in live:  # join order → deterministic tie-break
            score = self._score(pod, request.function)
            if best_score is None or score > best_score:
                best, best_score = pod, score
        return best

    def _score(self, pod: PodHandle, function: str) -> float:
        cfg = self.config
        porter = pod.porter
        score = 0.0
        slots = porter.total_slots()
        load = pod.running() / slots if slots > 0 else 1.0
        # §8: per-pod CXL bandwidth saturates long before CPU slots do,
        # so pressure is the max of the two — a pod whose device is at
        # the knee of the 1/(1-ρ) curve is as "full" as one out of slots.
        bandwidth = getattr(pod.fabric, "bandwidth", None)
        if bandwidth is not None and bandwidth.capacity_gbps > 0:
            bw_load = bandwidth.offered_gbps / bandwidth.capacity_gbps
            load = max(load, min(bw_load, 2.0))
        # RAS steering: a decaying device is pressure too.  Zero-cost and
        # score-neutral while the pod is poison-free (the common case).
        poison = getattr(pod, "poison_rate", 0.0)
        if poison > 0.0:
            load = max(load, min(poison * cfg.poison_pressure_scale, 2.0))
        # A warm instance (or a local image) behind a saturated pod is
        # not warm: the request would just wait out the queueing.  Scale
        # the affinity bonuses by headroom so a full home pod overflows
        # to idle pods, which pull the image and absorb the burst — the
        # mechanism that splits offered load across devices.
        headroom = max(0.0, 1.0 - load)
        if porter.warm_idle_count(function) > 0:
            score += cfg.warm_weight * headroom
        if porter.store.contains(cfg.user, function):
            score += cfg.locality_weight * headroom
        score -= cfg.load_weight * load
        if slots > 0:
            score += cfg.capacity_weight * (
                pod.free_cxl_bytes() / max(pod.fabric.device.capacity_bytes, 1)
            )
        if pod.suspected:
            score -= cfg.suspect_penalty
        if getattr(pod, "degraded", False):
            score -= cfg.degraded_penalty
        return score

    def submit(self, request: Request) -> None:
        """Route one request and dispatch it (arrival-event entry point)."""
        pod = self.route(request)
        self.stats.routed += 1
        self.stats.per_pod[pod.name] = self.stats.per_pod.get(pod.name, 0) + 1
        function = request.function
        if pod.porter.warm_idle_count(function) > 0:
            self.stats.warm_hits += 1
        has_image = pod.porter.store.contains(self.config.user, function)
        if has_image:
            self.stats.locality_hits += 1
        if TRACE.enabled:
            TRACE.count("cluster.routed")
            TRACE.add_span(
                "cluster.route", self.queue.now, self._dispatch_ns,
                function=function, pod=pod.name,
            )
        if not has_image and self.config.replication != "none":
            holder = self._image_holder(function, exclude=pod)
            self.stats.misses += 1
            if holder is not None:
                # Mitosis-style ship-and-restore, but never on the
                # critical path: this request routes *to the data* (the
                # holder pod) while the image ships to the chosen pod in
                # the background — the rest of the burst restores
                # CXL-locally there once the replica lands.
                self.stats.pulls += 1
                self.replicator.ship(function, holder, pod)
                self._deliver(holder, request)
                return
        elif not has_image:
            self.stats.misses += 1
        self._deliver(pod, request)

    def _image_holder(
        self, function: str, *, exclude: PodHandle
    ) -> Optional[PodHandle]:
        for pod in self.membership.live_pods():
            if pod is not exclude and pod.porter.store.contains(
                self.config.user, function
            ):
                return pod
        return None

    def _deliver(self, pod: PodHandle, request: Request) -> None:
        """Hand the request to the pod's porter after the control hop."""
        self.queue.schedule_after(
            self._dispatch_ns,
            lambda: self._pod_submit(pod, request),
            label=f"dispatch:{pod.name}",
        )

    def _pod_submit(self, pod: PodHandle, request: Request) -> None:
        if pod.failed or pod.name in self.membership.detector.declared_dead:
            # Died between routing and delivery: route again elsewhere.
            self._resubmit(request)
            return
        pod.porter.submit(request)

    def _resubmit(self, request: Request) -> None:
        try:
            self.submit(request)
        except FederationExhaustedError:
            self._record_lost(request)

    # -- failure paths -----------------------------------------------------------

    def _reroute(self, pod: PodHandle, request: Request, reason: str) -> bool:
        """Porter drop hook: take the request back and try another pod.

        Returning False leaves the drop with the pod (it records the
        failure); True means the federation owns the request now.
        """
        attempts = self._reroutes.get(id(request), 0)
        others = [
            p for p in self.membership.live_pods() if p is not pod
        ]
        if attempts >= self.config.max_reroutes or not others:
            self._reroutes.pop(id(request), None)
            return False
        self._reroutes[id(request)] = attempts + 1
        self.stats.reroutes += 1
        if TRACE.enabled:
            TRACE.count("cluster.reroutes")
            TRACE.count(f"cluster.reroutes.{reason}")
        best, best_score = None, None
        for candidate in others:
            score = self._score(candidate, request.function)
            if best_score is None or score > best_score:
                best, best_score = candidate, score
        self._deliver(best, request)
        return True

    def _handle_pod_failure(self, pod: PodHandle) -> None:
        """Membership callback: a pod was declared dead.

        The pod's in-flight work unwinds through the porter's own node
        failover (every node is dead, so its drops come back through
        ``_reroute``).  Images it exclusively held are simply gone —
        demand re-checkpoints on survivors via the §5 protocol.
        """
        TRACE.count("cluster.pods_declared_dead")
        pod.log.emit(self.queue.now, "pod_declared_dead", pod=pod.name)

    def _record_lost(self, request: Request) -> None:
        """No live pod anywhere: account the request on any recorder so
        trace replay still terminates (mirrors the porter's ``failed``)."""
        self._reroutes.pop(id(request), None)
        recorder = self.membership.pods()[0].porter.metrics
        recorder.record(
            request.function, self.queue.now - request.when, kind="failed"
        )
        TRACE.count("cluster.requests_lost")

    # -- the drive loop ----------------------------------------------------------

    def total_count(self) -> int:
        return sum(p.porter.metrics.count() for p in self.membership.pods())

    def recorders(self) -> list:
        return [p.porter.metrics for p in self.membership.pods()]

    def merged_metrics(self) -> LatencyRecorder:
        """One recorder combining every pod's, for cluster-wide stats."""
        merged = LatencyRecorder()
        for recorder in self.recorders():
            for function in recorder.functions():
                histogram = recorder.histogram(function)
                kinds = recorder.kinds(function)
                for value, kind in zip(histogram.to_numpy(), kinds):
                    merged.record(function, float(value), kind=kind)
        return merged

    def run(self, requests: list, *, until: Optional[int] = None) -> None:
        """Replay a shared trace across the federation to completion."""
        for request in requests:
            self.queue.schedule(
                request.when, lambda r=request: self.submit(r), label="arrival"
            )
        for pod in self.membership.pods():
            porter = pod.porter
            self.queue.schedule_after(
                porter.config.controller_tick_ns, porter._controller_tick
            )
            if porter.detector is not None:
                porter.detector.start()
        if self.config.failure_detection:
            self.membership.start()
        horizon = until
        if horizon is None:
            horizon = (max(r.when for r in requests) if requests else 0) + 120 * SEC
        while True:
            pending = self.queue.peek_time()
            if pending is None or pending > horizon:
                break
            self.queue.step()
            if until is None and self.total_count() >= len(requests):
                break


__all__ = ["ClusterRouter", "RouterConfig", "RoutingStats"]
