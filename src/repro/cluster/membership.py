"""Pod membership: pods as failure domains of the federated cluster.

A pod — one CXL device plus the nodes cabled to it — is the blast radius
of a fabric failure (§3.1 treats the device as the shared fate domain; a
node crash loses nothing, a device crash loses the pod).  The federation
layer therefore reasons about *pods* the way a pod's CXLporter reasons
about *nodes*: each pod is a heartbeat target, and
:class:`~repro.porter.failure_detector.HeartbeatDetector` is reused
verbatim at pod granularity — a :class:`PodHandle` quacks like a
``ComputeNode`` (``.name``/``.failed``/``.suspected``/``.slow_factor``/
``.log``), so missed-heartbeat counting, gray-failure suspicion, and
``on_dead`` callbacks all come for free.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.porter.failure_detector import HeartbeatDetector
from repro.sim.events import EventQueue
from repro.sim.log import EventLog
from repro.sim.units import MS


class PodHandle:
    """One pod as seen by the federation: identity, resources, health.

    Duck-types the node surface :class:`HeartbeatDetector` polls, so the
    existing detector runs unmodified with pods as its "nodes".
    """

    def __init__(self, name: str, fabric, nodes: list, *, cxlfs=None,
                 porter=None) -> None:
        self.name = name
        self.fabric = fabric
        self.nodes = list(nodes)
        self.cxlfs = cxlfs
        #: The pod's CXLporter deployment (set after construction when the
        #: porter is built around the handle).
        self.porter = porter
        #: Gray-failure flag, set by the detector (same protocol as nodes).
        self.suspected = False
        #: RAS verdict: the pod serves, but its CXL pool is losing frames
        #: to poison — the router steers overflow away (same protocol as
        #: nodes; set by the detector's degrade threshold).
        self.degraded = False
        self.log = EventLog(enabled=False)
        #: Whole-pod failure (CXL device power loss), distinct from all
        #: nodes happening to crash individually.
        self._device_failed = False
        self._replica_ids = itertools.count(1)

    # -- detector surface -------------------------------------------------------

    @property
    def failed(self) -> bool:
        """The pod can serve nothing: device gone or every node down."""
        return self._device_failed or all(n.failed for n in self.nodes)

    @property
    def slow_factor(self) -> float:
        """Worst live node's slowdown — a pod is as gray as its slowest
        still-serving member (dead nodes don't count; they're failures)."""
        live = [n.slow_factor for n in self.nodes if not n.failed]
        return max(live, default=1.0)

    @property
    def poison_rate(self) -> float:
        """Fraction of the pod's shared CXL pool lost or losing to poison.

        The shared device is what checkpoints (and thus every fork served
        from this pod) live in, so pod-level decay is measured there, not
        on per-node DRAM.
        """
        return self.fabric.device.frames.poison_rate

    # -- failure injection ------------------------------------------------------

    def fail(self) -> None:
        """Fabric-level failure: the device and everything on it is gone."""
        self._device_failed = True
        for node in self.nodes:
            if not node.failed:
                node.fail()

    # -- resources the router weighs --------------------------------------------

    @property
    def store(self):
        return self.porter.store

    def running(self) -> int:
        """Instances executing right now across the pod's nodes."""
        return sum(getattr(n, "_porter_running", 0) for n in self.nodes)

    def free_cxl_bytes(self) -> int:
        return self.fabric.free_bytes

    def next_image_id(self, comm: str) -> str:
        """Local image id for a materialized replica (never on the wire)."""
        return f"{comm}@{self.name}-r{next(self._replica_ids)}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PodHandle({self.name!r}, nodes={len(self.nodes)})"


class PodMembership:
    """Join/leave/fail tracking for the cluster's pods.

    Wraps one :class:`HeartbeatDetector` whose "nodes" are the pod
    handles.  Detection latency scales the same way it does inside a pod:
    ``miss_threshold * interval_ns`` from device failure to the router
    learning about it.
    """

    def __init__(
        self,
        queue: EventQueue,
        *,
        interval_ns: int = int(500 * MS),
        miss_threshold: int = 3,
        on_pod_dead: Optional[Callable[[PodHandle], None]] = None,
    ) -> None:
        self.queue = queue
        self._pods: dict[str, PodHandle] = {}
        self.on_pod_dead = on_pod_dead
        self.detector = HeartbeatDetector(
            [],
            queue,
            interval_ns=interval_ns,
            miss_threshold=miss_threshold,
            on_dead=self._pod_declared_dead,
        )

    # -- membership -------------------------------------------------------------

    def join(self, pod: PodHandle) -> PodHandle:
        if pod.name in self._pods:
            raise ValueError(f"pod {pod.name!r} already joined")
        self._pods[pod.name] = pod
        self.detector.nodes.append(pod)
        self.detector.misses[pod.name] = 0
        return pod

    def leave(self, name: str) -> PodHandle:
        """Graceful departure: the pod stops being a routing target."""
        pod = self._pods.pop(name)
        self.detector.nodes.remove(pod)
        self.detector.misses.pop(name, None)
        self.detector.declared_dead.pop(name, None)
        return pod

    def _pod_declared_dead(self, pod: PodHandle) -> None:
        if self.on_pod_dead is not None:
            self.on_pod_dead(pod)

    # -- views ------------------------------------------------------------------

    def pods(self) -> list:
        """All members, join order (deterministic)."""
        return list(self._pods.values())

    def pod(self, name: str) -> PodHandle:
        return self._pods[name]

    def live_pods(self) -> list:
        """Pods the router may target: not failed, not declared dead."""
        return [
            p
            for p in self._pods.values()
            if not p.failed and p.name not in self.detector.declared_dead
        ]

    def __len__(self) -> int:
        return len(self._pods)

    def start(self) -> None:
        self.detector.start()

    def stop(self) -> None:
        self.detector.stop()


__all__ = ["PodHandle", "PodMembership"]
