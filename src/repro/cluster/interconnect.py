"""Inter-pod interconnect: the cost model for crossing pod boundaries.

Inside a pod, CXL makes remote memory a load away — hundreds of
nanoseconds (:mod:`repro.cxl.latency`).  Between pods there is no shared
fabric: checkpoint images move over RDMA or Ethernet, paying microseconds
of propagation, per-transfer setup, and *serialized* use of a
bandwidth-limited link.  The three-orders-of-magnitude gap between these
two regimes is the whole reason the cluster layer treats "route to the
data" and "ship the data" as different decisions (Aquifer's two-tier
design; MITOSIS pays the wire on every remote fork).

Links model contention as a FIFO pipe: a transfer that arrives while the
link is busy queues behind the in-flight bytes, so concurrent replications
between the same pod pair stretch each other deterministically.  Each
ordered pod pair gets its own simplex link (full-duplex fabrics carry
A→B and B→A traffic independently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.telemetry import TRACE

#: 1 GB/s == 1 B/ns, matching repro.cxl.latency's convention.
_BYTES_PER_NS_PER_GBPS = 1.0


@dataclass(frozen=True)
class LinkSpec:
    """Static parameters of one inter-pod link technology."""

    kind: str
    #: One-way propagation + NIC/switch traversal for the first byte.
    latency_ns: float
    #: Sustained point-to-point bandwidth.
    bandwidth_gbps: float
    #: Per-transfer setup (QP doorbell / socket + syscall overheads).
    setup_ns: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"{self.kind}: bandwidth must be positive")
        if self.latency_ns < 0 or self.setup_ns < 0:
            raise ValueError(f"{self.kind}: negative latency/setup")

    def serialization_ns(self, nbytes: int) -> float:
        """Time the link is occupied transmitting ``nbytes``."""
        return nbytes / (self.bandwidth_gbps * _BYTES_PER_NS_PER_GBPS)


#: 100 Gb/s RDMA (RoCE/IB): ~2 us one-way, cheap posted sends.  The
#: MITOSIS numbers (§"No Provisioned Concurrency"): remote fork dominated
#: by wire time, not software.
RDMA = LinkSpec(kind="rdma", latency_ns=2_000.0, bandwidth_gbps=12.5, setup_ns=600.0)

#: 25 GbE with a kernel network stack: tens of us one-way, per-transfer
#: syscall + TCP costs an order of magnitude above RDMA's.
ETHERNET = LinkSpec(
    kind="ethernet", latency_ns=30_000.0, bandwidth_gbps=3.0, setup_ns=15_000.0
)

_PRESETS = {"rdma": RDMA, "ethernet": ETHERNET}


def link_spec(kind: "str | LinkSpec") -> LinkSpec:
    """Resolve a preset name (or pass a spec through)."""
    if isinstance(kind, LinkSpec):
        return kind
    spec = _PRESETS.get(kind)
    if spec is None:
        raise KeyError(f"unknown link kind {kind!r}; known: {sorted(_PRESETS)}")
    return spec


class InterPodLink:
    """One simplex link with FIFO bandwidth contention.

    ``transfer_ns(nbytes, now)`` returns the *completion delay* from
    ``now``: queueing behind in-flight transfers + setup + serialization +
    propagation.  State advances, so calls must be made in virtual-time
    order (the event queue guarantees that).
    """

    def __init__(self, src: str, dst: str, spec: LinkSpec) -> None:
        self.src = src
        self.dst = dst
        self.spec = spec
        #: Virtual time the link finishes its last queued transmission.
        self.busy_until_ns = 0
        self.transfers = 0
        self.bytes_sent = 0

    def transfer_ns(self, nbytes: int, *, now: int) -> int:
        """Delay from ``now`` until ``nbytes`` fully land at the far end."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        start = max(int(now), self.busy_until_ns)
        occupancy = self.spec.setup_ns + self.spec.serialization_ns(nbytes)
        self.busy_until_ns = start + int(occupancy)
        self.transfers += 1
        self.bytes_sent += nbytes
        done = self.busy_until_ns + int(self.spec.latency_ns)
        if TRACE.enabled:
            TRACE.count("cluster.link_transfers")
            TRACE.count("cluster.link_bytes", nbytes)
            queued = start - int(now)
            if queued > 0:
                TRACE.observe("cluster.link_queue_ns", queued)
        return done - int(now)

    def rtt_ns(self) -> int:
        """Control-message round trip (negligible payload, no queueing)."""
        return int(2 * (self.spec.latency_ns + self.spec.setup_ns))


class Interconnect:
    """Full mesh of inter-pod links, created lazily per ordered pair."""

    def __init__(self, spec: "str | LinkSpec" = "rdma") -> None:
        self.spec = link_spec(spec)
        self._links: dict[tuple, InterPodLink] = {}

    def link(self, src: str, dst: str) -> InterPodLink:
        if src == dst:
            raise ValueError(f"no self-link: {src!r} -> {dst!r}")
        key = (src, dst)
        found = self._links.get(key)
        if found is None:
            found = InterPodLink(src, dst, self.spec)
            self._links[key] = found
        return found

    def transfer_ns(self, src: str, dst: str, nbytes: int, *, now: int) -> int:
        return self.link(src, dst).transfer_ns(nbytes, now=now)

    def control_rtt_ns(self) -> int:
        """Router <-> pod control round trip (no per-pair queueing)."""
        return int(2 * self.spec.latency_ns)

    def links(self) -> list:
        return [self._links[k] for k in sorted(self._links)]

    @property
    def total_bytes(self) -> int:
        return sum(link.bytes_sent for link in self._links.values())


__all__ = [
    "ETHERNET",
    "Interconnect",
    "InterPodLink",
    "LinkSpec",
    "RDMA",
    "link_spec",
]
