"""Checkpoint replication: ship images between pods' object stores.

A checkpoint is only restorable inside the pod that holds its frames — a
CXLfork image *is* CXL frames plus rebased metadata, a CRIU image is files
on the pod's in-CXL file system.  To serve a function from another pod,
the image must be **shipped**: encoded into a portable wire form with the
:mod:`repro.serial` codec, pushed over the inter-pod interconnect, and
**materialized** — frames re-allocated from the destination pod's device,
pointers re-rebased against the destination heap (mitosis-style
ship-and-restore, amortized over every later restore on that pod).

The wire form is canonical and content-addressed-friendly: it carries the
*logical* image (PTE flags with frame numbers replaced by dense ordinals,
VMA records, register/namespace/fd state, page payload sizes) and nothing
pod-specific, so ``encode_image(materialize(encode_image(ckpt)))`` is
bit-identical to ``encode_image(ckpt)`` — the determinism guarantee the
replication tests pin.

Two policies decide *when* to ship (Aquifer's pull/push split):

* **pull-on-miss** — ship lazily, when the router routes a request to a
  pod that lacks the image (first cross-pod cold start pays the wire);
* **push** — ship eagerly after checkpoint creation to ``fanout`` other
  pods, trading background interconnect traffic for locality everywhere.

**Delta replication** (dedup-aware shipping): when the source image was
sealed under :mod:`repro.dedup`, the wire form carries each page's chunk
code alongside its PTE flags.  Before paying the interconnect, the shipper
asks the destination pod's chunk index which codes it is missing and ships
only those page payloads (plus the 8-byte-per-chunk hash listing); pages
the destination already holds are adopted from its index at materialize
time instead of traversing the wire.  With dedup off the wire form is
byte-identical to the non-dedup encoding and every page ships, so the
pinned replication digests are unaffected.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.os.mm.pagetable import PTES_PER_LEAF, PteLeaf
from repro.os.mm.pte import PTE_FLAG_MASK, PTE_FRAME_SHIFT
from repro.os.mm.vma import VmaLeaf
from repro.ras import RAS, verify_checkpoint
from repro.rfork.criu import CriuCheckpoint
from repro.rfork.criu import build_restore_plan as _criu_restore_plan
from repro.rfork.cxlfork import (
    REBASE_FIXUP_NS,
    VMA_STRUCT_BYTES,
    CxlForkCheckpoint,
)
from repro.rfork.cxlfork import build_restore_plan as _cxlfork_restore_plan
from repro.rfork.restoreplan import RESTORE_PLAN, plan_for
from repro.serial.blob import CxlHeap
from repro.serial.codec import Codec
from repro.serial.rebase import Rebaser
from repro.serial.records import (
    PagemapRecord,
    RegsRecord,
    TaskRecord,
    VmaRecord,
)
from repro.sim.units import PAGE_SIZE
from repro.telemetry import TRACE


class ReplicationError(RuntimeError):
    """A checkpoint cannot be shipped (unsupported or inconsistent image)."""


# -- wire form -----------------------------------------------------------------


def wire_image(checkpoint) -> dict:
    """The portable, pod-independent image of a checkpoint.

    Pure logical content — no frame numbers, heap offsets, image ids, or
    node names — so the same process state always encodes to the same
    bytes regardless of which pod holds it.
    """
    if isinstance(checkpoint, (CxlForkCheckpoint, CriuCheckpoint)):
        if RAS.active():
            # A poisoned source must never replicate: shipping it would
            # spread the corruption to every peer pod (the CXL "viral"
            # semantic, enforced in software at the encode boundary).
            verify_checkpoint(checkpoint, context="replication.wire_image")
    if isinstance(checkpoint, CxlForkCheckpoint):
        return _cxlfork_wire(checkpoint)
    if isinstance(checkpoint, CriuCheckpoint):
        return _criu_wire(checkpoint)
    raise ReplicationError(
        f"cannot ship a {type(checkpoint).__name__}: mitosis-style "
        "checkpoints are coupled to a live parent node and have no "
        "self-contained image (§3.1); re-checkpoint with cxlfork/criu-cxl"
    )


def _cxlfork_wire(ckpt: CxlForkCheckpoint) -> dict:
    flag_mask = np.int64(PTE_FLAG_MASK)
    dedup = ckpt.chunk_codes is not None
    leaves = []
    for leaf_index in sorted(ckpt.leaf_offsets):
        leaf: PteLeaf = ckpt.heap.deref(ckpt.leaf_offsets[leaf_index])
        positions = np.nonzero(leaf.ptes)[0]
        entry = {
            "index": int(leaf_index),
            "pos": positions.tolist(),
            "flags": (leaf.ptes[positions] & flag_mask).tolist(),
        }
        if dedup:
            # Chunk codes ride the wire so the destination can adopt pages
            # it already holds instead of receiving their payloads.  Only
            # present when the image was sealed dedup-on: a dedup-off
            # checkpoint's wire form stays byte-identical to before.
            # Fixed-width (8 bytes/code) so the blob size depends on the
            # page count alone, never on the code values.
            recorded = ckpt.chunk_codes.get(int(leaf_index))
            if recorded is None:
                entry["codes"] = bytes(8 * int(positions.size))
            else:
                entry["codes"] = recorded[positions].astype("<i8").tobytes()
        leaves.append(entry)
    vma_leaves = []
    for offset in ckpt.vma_leaf_offsets:
        leaf: VmaLeaf = ckpt.heap.deref(offset)
        vma_leaves.append([VmaRecord.capture(v).to_wire() for v in leaf.vmas])
    regs: RegsRecord = ckpt.heap.deref(ckpt.regs_offset)
    wire = {
        "mech": "cxlfork",
        "comm": ckpt.comm,
        "leaves": leaves,
        "vma_leaves": vma_leaves,
        "regs": regs.to_wire(),
        "global": ckpt.heap.deref(ckpt.global_offset),
        "present_pages": ckpt.present_pages,
    }
    if dedup:
        wire["zero_elided"] = int(ckpt.zero_elided_pages)
    return wire


def _criu_wire(ckpt: CriuCheckpoint) -> dict:
    if ckpt.task_record is None:
        raise ReplicationError(f"CRIU image {ckpt.image_id!r} has no task record")
    wire = {
        "mech": "criu-cxl",
        "comm": ckpt.comm,
        "task": ckpt.task_record.to_wire(),
        "vmas": [r.to_wire() for r in ckpt.vma_records],
        "pagemaps": [r.to_wire() for r in ckpt.pagemaps],
        "dumped_pages": ckpt.dumped_pages,
        "metadata_bytes": ckpt.metadata_bytes,
    }
    if ckpt.page_codes.size:
        # vpn -> content code for every dumped page (dedup-on seals only).
        wire["chunks"] = {
            "vpns": ckpt.page_code_vpns.astype("<i8").tobytes(),
            "codes": ckpt.page_codes.astype("<i8").tobytes(),
        }
        wire["zero_elided"] = int(ckpt.zero_elided_pages)
    return wire


def encode_image(checkpoint, *, codec: Optional[Codec] = None) -> bytes:
    """Canonical serialized wire image (the shipped metadata bytes)."""
    return (codec or Codec()).encode(wire_image(checkpoint))


def shipped_bytes(checkpoint, blob: bytes) -> int:
    """Total volume on the wire: metadata blob + raw page payload.

    The blob carries page *structure*; the 4 KiB page payloads travel
    alongside it and dominate the transfer for real functions.
    """
    return len(blob) + getattr(checkpoint, "data_bytes", 0)


#: Per-chunk hash listing overhead on the delta wire (a truncated 64-bit
#: content code per unique chunk, matching :mod:`repro.dedup`'s code width).
HASH_WIRE_BYTES = 8


def _decode_codes(buf: bytes) -> np.ndarray:
    """Fixed-width wire form back to an int64 code array (always a copy)."""
    return np.frombuffer(buf, dtype="<i8").astype(np.int64)


def wire_chunk_codes(wire: dict) -> np.ndarray:
    """Every chunk code a wire image carries (empty when sealed dedup-off)."""
    if wire.get("mech") == "cxlfork":
        chunks = [
            _decode_codes(entry["codes"])
            for entry in wire["leaves"]
            if "codes" in entry
        ]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)
    payload = wire.get("chunks")
    if payload is None:
        return np.empty(0, dtype=np.int64)
    return _decode_codes(payload["codes"])


# -- materialization -----------------------------------------------------------


def materialize(wire: dict, pod, *, codec: Optional[Codec] = None):
    """Rebuild a shipped image against ``pod``'s fabric / file system.

    ``pod`` is a :class:`repro.cluster.membership.PodHandle` (anything
    with ``.fabric``, ``.cxlfs``, and ``.next_image_id()``).  Returns
    ``(checkpoint, install_ns)`` where ``install_ns`` is the virtual-time
    cost of landing the image (decode + non-temporal stores + re-rebase).
    """
    codec = codec or Codec()
    mech = wire.get("mech")
    if mech == "cxlfork":
        ckpt, install_ns = _materialize_cxlfork(wire, pod, codec)
        builder = _cxlfork_restore_plan
    elif mech == "criu-cxl":
        ckpt, install_ns = _materialize_criu(wire, pod, codec)
        builder = _criu_restore_plan
    else:
        raise ReplicationError(f"unknown wire mechanism {mech!r}")
    if RESTORE_PLAN.active():
        # Seed the restore plan while the landed image is hot: the first
        # cold start on this pod then restores plan-served.  Codec-keyed
        # fields (the cxlfork global-state decode) stay lazy — the pod's
        # restoring mechanism may use a different codec than this ship.
        plan_for(ckpt, pod.fabric, builder)
    return ckpt, install_ns


def _materialize_cxlfork(wire: dict, pod, codec: Codec):
    fabric = pod.fabric
    latency = fabric.latency
    ckpt = CxlForkCheckpoint(wire["comm"], fabric, CxlHeap(fabric, f"ckpt:{wire['comm']}"))
    ckpt.source_node = f"replica@{pod.name}"
    rebaser = Rebaser(ckpt.heap)
    frame_chunks: list[np.ndarray] = []
    interner = None
    if any("codes" in entry for entry in wire["leaves"]):
        # Dedup-sealed image: resolve each shipped code against the
        # destination's chunk index — adopt chunks it already holds, and
        # allocate + register the ones that traversed the wire, so the
        # landed replica both *consumes* and *seeds* dedup on this pod.
        from repro.dedup.seal import ChunkInterner

        interner = ChunkInterner(fabric.chunk_index, fabric)
        ckpt.chunk_codes = {}
        ckpt.zero_elided_pages = int(wire.get("zero_elided", 0))
    try:
        total_present = 0
        for entry in wire["leaves"]:
            new_ptes = np.zeros(PTES_PER_LEAF, dtype=np.int64)
            positions = np.asarray(entry["pos"], dtype=np.int64)
            if positions.size:
                if interner is not None:
                    leaf_codes = _decode_codes(entry["codes"])
                    frames = interner.intern_leaf(leaf_codes)
                    recorded = np.zeros(PTES_PER_LEAF, dtype=np.int64)
                    recorded[positions] = leaf_codes
                    ckpt.chunk_codes[int(entry["index"])] = recorded
                else:
                    frames = fabric.alloc_frames(int(positions.size))
                frame_chunks.append(frames)
                flags = np.asarray(entry["flags"], dtype=np.int64)
                new_ptes[positions] = (frames << np.int64(PTE_FRAME_SHIFT)) | flags
                total_present += int(positions.size)
            leaf = PteLeaf(new_ptes, cxl_resident=True)
            ckpt.pagetable.install_leaf(entry["index"], leaf)
            offset = rebaser.intern(leaf, PAGE_SIZE)
            leaf.backing_frame = int(offset)
            ckpt.leaf_offsets[entry["index"]] = int(offset)
        ckpt.present_pages = total_present
        if frame_chunks:
            ckpt.data_frames = np.concatenate(frame_chunks)
        if interner is not None:
            interner.finish()
            ckpt.shared_chunk_pages = interner.shared_pages

        vma_bytes = 0
        for records in wire["vma_leaves"]:
            vmas = []
            for rec_wire in records:
                record = VmaRecord.from_wire(rec_wire)
                vma = record.rebuild(file_registered=False)
                if not vma.is_file_backed():
                    vma = record.rebuild(file_registered=True)
                vmas.append(vma)
            leaf = VmaLeaf(vmas, cxl_resident=True)
            ckpt.vma_leaves.append(leaf)
            size = sum(
                VMA_STRUCT_BYTES + (len(v.path) if v.path else 0) for v in vmas
            )
            vma_bytes += size
            offset = rebaser.intern(leaf, max(size, 1))
            leaf.backing_frame = int(offset)
            ckpt.vma_leaf_offsets.append(int(offset))

        blob = wire["global"]
        ckpt.global_offset = ckpt.heap.store(blob, len(blob))
        regs = RegsRecord.from_wire(wire["regs"])
        ckpt.regs_offset = ckpt.heap.store(
            regs, regs.restore_into().serialized_size()
        )
        image = {
            "leaves": dict(ckpt.leaf_offsets),
            "vma_leaves": list(ckpt.vma_leaf_offsets),
            "regs": ckpt.regs_offset,
            "global": ckpt.global_offset,
        }
        ckpt.image_offset = ckpt.heap.store(image, 256)
        rebaser.verify_closed(
            roots=list(ckpt.pagetable._leaves.values()) + ckpt.vma_leaves,
            child_refs=lambda obj: [],
        )
        ckpt.rebased = True
        ckpt.verify_detached()
    except BaseException:
        # A failed materialization must not strand destination frames.
        if interner is not None:
            interner.abort()
        if frame_chunks:
            fabric.put_frames(np.concatenate(frame_chunks))
        ckpt.data_frames = np.empty(0, dtype=np.int64)
        ckpt._deleted = True
        ckpt.heap.release()
        raise

    # Adopted chunks are already device-resident; only the pages that
    # actually traversed the wire pay the non-temporal landing stores.
    landed_data_bytes = ckpt.data_bytes - ckpt.shared_chunk_pages * PAGE_SIZE
    n_structs = ckpt.pagetable.leaf_count + len(ckpt.vma_leaves)
    n_records = n_structs + sum(len(r) for r in wire["vma_leaves"]) + 2
    install_ns = (
        codec.costs.decode_ns(ckpt.metadata_bytes + vma_bytes, n_records)
        + latency.copy_ns(landed_data_bytes, src_cxl=False, dst_cxl=True)
        + latency.copy_ns(
            ckpt.pagetable.leaf_count * PAGE_SIZE, src_cxl=False, dst_cxl=True
        )
        + n_structs * REBASE_FIXUP_NS
    )
    return ckpt, install_ns


def _materialize_criu(wire: dict, pod, codec: Codec):
    cxlfs = pod.cxlfs
    if cxlfs is None:
        raise ReplicationError(
            f"pod {pod.name!r} has no CXL file system; cannot land a CRIU image"
        )
    latency = pod.fabric.latency
    ckpt = CriuCheckpoint(wire["comm"], cxlfs, pod.next_image_id(wire["comm"]))
    ckpt.task_record = TaskRecord.from_wire(wire["task"])
    ckpt.vma_records = [VmaRecord.from_wire(w) for w in wire["vmas"]]
    ckpt.pagemaps = [PagemapRecord.from_wire(w) for w in wire["pagemaps"]]
    ckpt.dumped_pages = wire["dumped_pages"]

    chunks = wire.get("chunks")
    interner = None
    if chunks is not None:
        # Dedup-sealed image: dumped pages whose chunks this pod already
        # holds resolve to adopted frames; the rest land in pages.img.
        from repro.dedup.seal import ChunkInterner

        fabric = pod.fabric
        interner = ChunkInterner(fabric.chunk_index, fabric)
        ckpt.page_code_vpns = _decode_codes(chunks["vpns"])
        ckpt.page_codes = _decode_codes(chunks["codes"])
        ckpt.zero_elided_pages = int(wire.get("zero_elided", 0))
        adopted: list[int] = []
        try:
            for code in ckpt.page_codes.tolist():
                frame = interner.adopt_only(int(code))
                if frame is not None:
                    adopted.append(frame)
        except BaseException:
            interner.abort()
            if adopted:
                fabric.put_frames(np.asarray(adopted, dtype=np.int64))
            raise
        ckpt.chunk_frames = np.asarray(adopted, dtype=np.int64)
        ckpt.dedup_pages = len(adopted)
        interner.finish()

    blob_t = codec.encode(wire["task"])
    blob_v = codec.encode(wire["vmas"])
    blob_m = codec.encode(wire["pagemaps"])
    prefix = f"/criu/{ckpt.image_id}"
    cxlfs.write_file(f"{prefix}/task.img", len(blob_t))
    cxlfs.write_file(f"{prefix}/vmas.img", len(blob_v))
    cxlfs.write_file(f"{prefix}/pagemap.img", len(blob_m))
    cxlfs.write_file(f"{prefix}/pages.img", ckpt.stored_data_bytes)
    ckpt.metadata_bytes = len(blob_t) + len(blob_v) + len(blob_m)
    if ckpt.metadata_bytes != wire["metadata_bytes"]:
        raise ReplicationError(
            f"CRIU image re-encode drifted: {ckpt.metadata_bytes} != "
            f"{wire['metadata_bytes']} bytes — codec mismatch between pods"
        )
    n_records = 4 + len(ckpt.vma_records) + len(ckpt.pagemaps)
    install_ns = codec.costs.decode_ns(
        ckpt.metadata_bytes, n_records
    ) + latency.copy_ns(ckpt.resident_cxl_bytes, src_cxl=False, dst_cxl=True)
    return ckpt, install_ns


# -- the shipper ---------------------------------------------------------------


@dataclass
class ReplicationStats:
    """Counters for one replicator's lifetime."""

    ships: int = 0
    bytes_shipped: int = 0
    dedup_hits: int = 0
    encode_cache_hits: int = 0
    failed: int = 0


@dataclass
class DeltaStats:
    """Delta-replication counters, kept separate from
    :class:`ReplicationStats` (whose shape pinned digests depend on).
    All zero unless dedup-sealed images were shipped."""

    #: Ships that negotiated a missing-set instead of sending every page.
    delta_ships: int = 0
    #: Unique chunks the destination already held (payload never shipped).
    chunks_deduped: int = 0
    #: Page payload a full ship would have moved.
    full_page_bytes: int = 0
    #: Page payload actually moved (missing chunks only).
    wire_page_bytes: int = 0
    #: Chunk-hash listing overhead paid for the negotiation.
    hash_bytes: int = 0

    @property
    def bytes_saved(self) -> int:
        return self.full_page_bytes - self.wire_page_bytes - self.hash_bytes

    def snapshot(self) -> dict:
        return {
            "delta_ships": self.delta_ships,
            "chunks_deduped": self.chunks_deduped,
            "full_page_bytes": self.full_page_bytes,
            "wire_page_bytes": self.wire_page_bytes,
            "hash_bytes": self.hash_bytes,
            "bytes_saved": self.bytes_saved,
        }


@dataclass
class _InFlight:
    done_at: int
    waiters: list = field(default_factory=list)


class Replicator:
    """Ships checkpoint images between pods over the interconnect.

    In-flight transfers are deduplicated per (user, function, destination):
    a second request for the same image while it is on the wire just waits
    for the first transfer instead of paying the link twice.
    """

    def __init__(self, interconnect, queue, *, user: str = "tenant0",
                 codec: Optional[Codec] = None) -> None:
        self.interconnect = interconnect
        self.queue = queue
        self.user = user
        self.codec = codec or Codec()
        self.stats = ReplicationStats()
        self.delta = DeltaStats()
        self._inflight: dict[tuple, _InFlight] = {}
        # Encoded-blob cache: the wire image is canonical content (see the
        # module docstring), so pushing one checkpoint to N pods can encode
        # once and reuse the bytes.  Dedup-sealed images are keyed by their
        # content hash (mechanism + comm + chunk codes), so a re-seal of
        # identical state — a different object — still hits; images without
        # codes fall back to object identity with a strong reference held.
        self._blob_cache: dict[tuple, tuple[object, bytes]] = {}
        # Decoded-wire cache, same keying.  Sharing one decoded dict across
        # ships is safe because materialize() only *reads* the wire form:
        # every landed structure is freshly built (``from_wire``,
        # ``np.asarray`` of a list) and the only by-reference installs are
        # immutable blobs (the cxlfork global-state bytes).
        self._wire_cache: dict[tuple, tuple[object, dict]] = {}
        self._wire_cache_hits = 0

    _BLOB_CACHE_MAX = 8

    @staticmethod
    def _cache_key(checkpoint) -> tuple:
        key = getattr(checkpoint, "_content_key", None)
        if key is not None:
            return key
        codes = None
        chunk_codes = getattr(checkpoint, "chunk_codes", None)
        if chunk_codes is not None:
            codes = b"".join(
                chunk_codes[i].tobytes() for i in sorted(chunk_codes)
            )
        else:
            page_codes = getattr(checkpoint, "page_codes", None)
            if page_codes is not None and page_codes.size:
                codes = page_codes.tobytes()
        if codes is None:
            return ("id", id(checkpoint))
        digest = hashlib.sha256()
        digest.update(f"{type(checkpoint).__name__}:{checkpoint.comm}:".encode())
        digest.update(codes)
        key = ("content", digest.hexdigest())
        checkpoint._content_key = key
        return key

    def _encoded_blob(self, checkpoint) -> bytes:
        key = self._cache_key(checkpoint)
        cached = self._blob_cache.get(key)
        if cached is not None and (key[0] == "content" or cached[0] is checkpoint):
            self.stats.encode_cache_hits += 1
            return cached[1]
        blob = self.codec.encode(wire_image(checkpoint))
        if len(self._blob_cache) >= self._BLOB_CACHE_MAX:
            self._blob_cache.pop(next(iter(self._blob_cache)))
        self._blob_cache[key] = (checkpoint, blob)
        return blob

    def _decoded_wire(self, checkpoint, blob: bytes) -> dict:
        key = self._cache_key(checkpoint)
        cached = self._wire_cache.get(key)
        if cached is not None and (key[0] == "content" or cached[0] is checkpoint):
            self._wire_cache_hits += 1
            return cached[1]
        wire = self.codec.decode(blob)
        if len(self._wire_cache) >= self._BLOB_CACHE_MAX:
            self._wire_cache.pop(next(iter(self._wire_cache)))
        self._wire_cache[key] = (checkpoint, wire)
        return wire

    def ship(
        self,
        function: str,
        src,
        dst,
        *,
        on_done: Optional[Callable[[Optional[object]], None]] = None,
    ) -> int:
        """Start (or join) a ship of ``function``'s image ``src`` -> ``dst``.

        Returns the virtual completion time.  ``on_done`` fires at that
        time with the destination store entry (None if the destination pod
        died while the image was in flight).
        """
        key = (self.user, function, dst.name)
        flight = self._inflight.get(key)
        if flight is not None:
            self.stats.dedup_hits += 1
            TRACE.count("cluster.replication_dedup")
            if on_done is not None:
                flight.waiters.append(on_done)
            return flight.done_at

        entry = src.store.peek(self.user, function)
        if entry is None:
            raise ReplicationError(
                f"pod {src.name!r} holds no checkpoint for {function!r}"
            )
        # Encode now: once the bytes are on the wire, a source-pod crash
        # cannot lose the transfer (mitosis-style ship, not remote paging).
        blob = self._encoded_blob(entry.checkpoint)
        wire = self._decoded_wire(entry.checkpoint, blob)
        nbytes = shipped_bytes(entry.checkpoint, blob)
        codes = wire_chunk_codes(wire)
        if codes.size:
            # Delta negotiation: ship the chunk-hash listing, ask the
            # destination which chunks it is missing, and move only those
            # payloads.  A destination with no index yet misses everything
            # — but still receives each unique chunk once, so intra-image
            # duplicates never pay the wire twice.
            uniq = np.unique(codes)
            uniq = uniq[uniq != 0]
            dst_index = getattr(dst.fabric, "_chunk_index", None)
            missing = (
                dst_index.missing_codes(codes) if dst_index is not None else uniq
            )
            full_page_bytes = nbytes - len(blob)
            wire_page_bytes = int(missing.size) * PAGE_SIZE
            hash_bytes = int(uniq.size) * HASH_WIRE_BYTES
            nbytes = len(blob) + wire_page_bytes + hash_bytes
            self.delta.delta_ships += 1
            self.delta.chunks_deduped += int(uniq.size - missing.size)
            self.delta.full_page_bytes += full_page_bytes
            self.delta.wire_page_bytes += wire_page_bytes
            self.delta.hash_bytes += hash_bytes
            if dst_index is not None:
                dst_index.stats.wire_chunks_deduped += int(uniq.size - missing.size)
            TRACE.count("cluster.delta_ships")
            TRACE.count(
                "cluster.delta_bytes_saved",
                full_page_bytes - wire_page_bytes - hash_bytes,
            )
        delay = self.interconnect.transfer_ns(
            src.name, dst.name, nbytes, now=self.queue.now
        )
        self.stats.ships += 1
        self.stats.bytes_shipped += nbytes
        TRACE.count("cluster.replications")
        TRACE.count("cluster.replication_bytes", nbytes)
        done_at = self.queue.now + delay
        flight = _InFlight(done_at=done_at)
        if on_done is not None:
            flight.waiters.append(on_done)
        self._inflight[key] = flight
        mechanism = entry.mechanism
        plan = getattr(entry, "plan", None)

        def land() -> None:
            self._inflight.pop(key, None)
            if dst.failed:
                self.stats.failed += 1
                TRACE.count("cluster.replications_lost")
                for waiter in flight.waiters:
                    waiter(None)
                return
            checkpoint, install_ns = materialize(wire, dst, codec=self.codec)
            if TRACE.enabled:
                TRACE.add_span(
                    "cluster.replicate",
                    self.queue.now,
                    delay + install_ns,
                    function=function,
                    src=src.name,
                    dst=dst.name,
                    bytes=nbytes,
                )

            def install() -> None:
                dst_entry = dst.store.put(
                    self.user,
                    function,
                    checkpoint,
                    mechanism=mechanism,
                    now=self.queue.now,
                )
                dst_entry.plan = plan
                TRACE.count("cluster.replications_landed")
                for waiter in flight.waiters:
                    waiter(dst_entry)

            self.queue.schedule_after(
                int(install_ns), install, label=f"replica-install:{function}"
            )

        self.queue.schedule_after(delay, land, label=f"replica-land:{function}")
        return done_at

    def inflight(self) -> int:
        return len(self._inflight)


__all__ = [
    "DeltaStats",
    "HASH_WIRE_BYTES",
    "ReplicationError",
    "ReplicationStats",
    "Replicator",
    "encode_image",
    "materialize",
    "shipped_bytes",
    "wire_chunk_codes",
    "wire_image",
]
