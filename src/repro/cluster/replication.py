"""Checkpoint replication: ship images between pods' object stores.

A checkpoint is only restorable inside the pod that holds its frames — a
CXLfork image *is* CXL frames plus rebased metadata, a CRIU image is files
on the pod's in-CXL file system.  To serve a function from another pod,
the image must be **shipped**: encoded into a portable wire form with the
:mod:`repro.serial` codec, pushed over the inter-pod interconnect, and
**materialized** — frames re-allocated from the destination pod's device,
pointers re-rebased against the destination heap (mitosis-style
ship-and-restore, amortized over every later restore on that pod).

The wire form is canonical and content-addressed-friendly: it carries the
*logical* image (PTE flags with frame numbers replaced by dense ordinals,
VMA records, register/namespace/fd state, page payload sizes) and nothing
pod-specific, so ``encode_image(materialize(encode_image(ckpt)))`` is
bit-identical to ``encode_image(ckpt)`` — the determinism guarantee the
replication tests pin.

Two policies decide *when* to ship (Aquifer's pull/push split):

* **pull-on-miss** — ship lazily, when the router routes a request to a
  pod that lacks the image (first cross-pod cold start pays the wire);
* **push** — ship eagerly after checkpoint creation to ``fanout`` other
  pods, trading background interconnect traffic for locality everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.os.mm.pagetable import PTES_PER_LEAF, PteLeaf
from repro.os.mm.pte import PTE_FLAG_MASK, PTE_FRAME_SHIFT
from repro.os.mm.vma import VmaLeaf
from repro.ras import RAS, verify_checkpoint
from repro.rfork.criu import CriuCheckpoint
from repro.rfork.cxlfork import (
    REBASE_FIXUP_NS,
    VMA_STRUCT_BYTES,
    CxlForkCheckpoint,
)
from repro.serial.blob import CxlHeap
from repro.serial.codec import Codec
from repro.serial.rebase import Rebaser
from repro.serial.records import (
    PagemapRecord,
    RegsRecord,
    TaskRecord,
    VmaRecord,
)
from repro.sim.units import PAGE_SIZE
from repro.telemetry import TRACE


class ReplicationError(RuntimeError):
    """A checkpoint cannot be shipped (unsupported or inconsistent image)."""


# -- wire form -----------------------------------------------------------------


def wire_image(checkpoint) -> dict:
    """The portable, pod-independent image of a checkpoint.

    Pure logical content — no frame numbers, heap offsets, image ids, or
    node names — so the same process state always encodes to the same
    bytes regardless of which pod holds it.
    """
    if isinstance(checkpoint, (CxlForkCheckpoint, CriuCheckpoint)):
        if RAS.active():
            # A poisoned source must never replicate: shipping it would
            # spread the corruption to every peer pod (the CXL "viral"
            # semantic, enforced in software at the encode boundary).
            verify_checkpoint(checkpoint, context="replication.wire_image")
    if isinstance(checkpoint, CxlForkCheckpoint):
        return _cxlfork_wire(checkpoint)
    if isinstance(checkpoint, CriuCheckpoint):
        return _criu_wire(checkpoint)
    raise ReplicationError(
        f"cannot ship a {type(checkpoint).__name__}: mitosis-style "
        "checkpoints are coupled to a live parent node and have no "
        "self-contained image (§3.1); re-checkpoint with cxlfork/criu-cxl"
    )


def _cxlfork_wire(ckpt: CxlForkCheckpoint) -> dict:
    flag_mask = np.int64(PTE_FLAG_MASK)
    leaves = []
    for leaf_index in sorted(ckpt.leaf_offsets):
        leaf: PteLeaf = ckpt.heap.deref(ckpt.leaf_offsets[leaf_index])
        positions = np.nonzero(leaf.ptes)[0]
        leaves.append(
            {
                "index": int(leaf_index),
                "pos": positions.tolist(),
                "flags": (leaf.ptes[positions] & flag_mask).tolist(),
            }
        )
    vma_leaves = []
    for offset in ckpt.vma_leaf_offsets:
        leaf: VmaLeaf = ckpt.heap.deref(offset)
        vma_leaves.append([VmaRecord.capture(v).to_wire() for v in leaf.vmas])
    regs: RegsRecord = ckpt.heap.deref(ckpt.regs_offset)
    return {
        "mech": "cxlfork",
        "comm": ckpt.comm,
        "leaves": leaves,
        "vma_leaves": vma_leaves,
        "regs": regs.to_wire(),
        "global": ckpt.heap.deref(ckpt.global_offset),
        "present_pages": ckpt.present_pages,
    }


def _criu_wire(ckpt: CriuCheckpoint) -> dict:
    if ckpt.task_record is None:
        raise ReplicationError(f"CRIU image {ckpt.image_id!r} has no task record")
    return {
        "mech": "criu-cxl",
        "comm": ckpt.comm,
        "task": ckpt.task_record.to_wire(),
        "vmas": [r.to_wire() for r in ckpt.vma_records],
        "pagemaps": [r.to_wire() for r in ckpt.pagemaps],
        "dumped_pages": ckpt.dumped_pages,
        "metadata_bytes": ckpt.metadata_bytes,
    }


def encode_image(checkpoint, *, codec: Optional[Codec] = None) -> bytes:
    """Canonical serialized wire image (the shipped metadata bytes)."""
    return (codec or Codec()).encode(wire_image(checkpoint))


def shipped_bytes(checkpoint, blob: bytes) -> int:
    """Total volume on the wire: metadata blob + raw page payload.

    The blob carries page *structure*; the 4 KiB page payloads travel
    alongside it and dominate the transfer for real functions.
    """
    return len(blob) + getattr(checkpoint, "data_bytes", 0)


# -- materialization -----------------------------------------------------------


def materialize(wire: dict, pod, *, codec: Optional[Codec] = None):
    """Rebuild a shipped image against ``pod``'s fabric / file system.

    ``pod`` is a :class:`repro.cluster.membership.PodHandle` (anything
    with ``.fabric``, ``.cxlfs``, and ``.next_image_id()``).  Returns
    ``(checkpoint, install_ns)`` where ``install_ns`` is the virtual-time
    cost of landing the image (decode + non-temporal stores + re-rebase).
    """
    codec = codec or Codec()
    mech = wire.get("mech")
    if mech == "cxlfork":
        return _materialize_cxlfork(wire, pod, codec)
    if mech == "criu-cxl":
        return _materialize_criu(wire, pod, codec)
    raise ReplicationError(f"unknown wire mechanism {mech!r}")


def _materialize_cxlfork(wire: dict, pod, codec: Codec):
    fabric = pod.fabric
    latency = fabric.latency
    ckpt = CxlForkCheckpoint(wire["comm"], fabric, CxlHeap(fabric, f"ckpt:{wire['comm']}"))
    ckpt.source_node = f"replica@{pod.name}"
    rebaser = Rebaser(ckpt.heap)
    frame_chunks: list[np.ndarray] = []
    try:
        total_present = 0
        for entry in wire["leaves"]:
            new_ptes = np.zeros(PTES_PER_LEAF, dtype=np.int64)
            positions = np.asarray(entry["pos"], dtype=np.int64)
            if positions.size:
                frames = fabric.alloc_frames(int(positions.size))
                frame_chunks.append(frames)
                flags = np.asarray(entry["flags"], dtype=np.int64)
                new_ptes[positions] = (frames << np.int64(PTE_FRAME_SHIFT)) | flags
                total_present += int(positions.size)
            leaf = PteLeaf(new_ptes, cxl_resident=True)
            ckpt.pagetable.install_leaf(entry["index"], leaf)
            offset = rebaser.intern(leaf, PAGE_SIZE)
            leaf.backing_frame = int(offset)
            ckpt.leaf_offsets[entry["index"]] = int(offset)
        ckpt.present_pages = total_present
        if frame_chunks:
            ckpt.data_frames = np.concatenate(frame_chunks)

        vma_bytes = 0
        for records in wire["vma_leaves"]:
            vmas = []
            for rec_wire in records:
                record = VmaRecord.from_wire(rec_wire)
                vma = record.rebuild(file_registered=False)
                if not vma.is_file_backed():
                    vma = record.rebuild(file_registered=True)
                vmas.append(vma)
            leaf = VmaLeaf(vmas, cxl_resident=True)
            ckpt.vma_leaves.append(leaf)
            size = sum(
                VMA_STRUCT_BYTES + (len(v.path) if v.path else 0) for v in vmas
            )
            vma_bytes += size
            offset = rebaser.intern(leaf, max(size, 1))
            leaf.backing_frame = int(offset)
            ckpt.vma_leaf_offsets.append(int(offset))

        blob = wire["global"]
        ckpt.global_offset = ckpt.heap.store(blob, len(blob))
        regs = RegsRecord.from_wire(wire["regs"])
        ckpt.regs_offset = ckpt.heap.store(
            regs, regs.restore_into().serialized_size()
        )
        image = {
            "leaves": dict(ckpt.leaf_offsets),
            "vma_leaves": list(ckpt.vma_leaf_offsets),
            "regs": ckpt.regs_offset,
            "global": ckpt.global_offset,
        }
        ckpt.image_offset = ckpt.heap.store(image, 256)
        rebaser.verify_closed(
            roots=list(ckpt.pagetable._leaves.values()) + ckpt.vma_leaves,
            child_refs=lambda obj: [],
        )
        ckpt.rebased = True
        ckpt.verify_detached()
    except BaseException:
        # A failed materialization must not strand destination frames.
        if frame_chunks:
            fabric.put_frames(np.concatenate(frame_chunks))
        ckpt.data_frames = np.empty(0, dtype=np.int64)
        ckpt._deleted = True
        ckpt.heap.release()
        raise

    n_structs = ckpt.pagetable.leaf_count + len(ckpt.vma_leaves)
    n_records = n_structs + sum(len(r) for r in wire["vma_leaves"]) + 2
    install_ns = (
        codec.costs.decode_ns(ckpt.metadata_bytes + vma_bytes, n_records)
        + latency.copy_ns(ckpt.data_bytes, src_cxl=False, dst_cxl=True)
        + latency.copy_ns(
            ckpt.pagetable.leaf_count * PAGE_SIZE, src_cxl=False, dst_cxl=True
        )
        + n_structs * REBASE_FIXUP_NS
    )
    return ckpt, install_ns


def _materialize_criu(wire: dict, pod, codec: Codec):
    cxlfs = pod.cxlfs
    if cxlfs is None:
        raise ReplicationError(
            f"pod {pod.name!r} has no CXL file system; cannot land a CRIU image"
        )
    latency = pod.fabric.latency
    ckpt = CriuCheckpoint(wire["comm"], cxlfs, pod.next_image_id(wire["comm"]))
    ckpt.task_record = TaskRecord.from_wire(wire["task"])
    ckpt.vma_records = [VmaRecord.from_wire(w) for w in wire["vmas"]]
    ckpt.pagemaps = [PagemapRecord.from_wire(w) for w in wire["pagemaps"]]
    ckpt.dumped_pages = wire["dumped_pages"]

    blob_t = codec.encode(wire["task"])
    blob_v = codec.encode(wire["vmas"])
    blob_m = codec.encode(wire["pagemaps"])
    prefix = f"/criu/{ckpt.image_id}"
    cxlfs.write_file(f"{prefix}/task.img", len(blob_t))
    cxlfs.write_file(f"{prefix}/vmas.img", len(blob_v))
    cxlfs.write_file(f"{prefix}/pagemap.img", len(blob_m))
    cxlfs.write_file(f"{prefix}/pages.img", ckpt.data_bytes)
    ckpt.metadata_bytes = len(blob_t) + len(blob_v) + len(blob_m)
    if ckpt.metadata_bytes != wire["metadata_bytes"]:
        raise ReplicationError(
            f"CRIU image re-encode drifted: {ckpt.metadata_bytes} != "
            f"{wire['metadata_bytes']} bytes — codec mismatch between pods"
        )
    n_records = 4 + len(ckpt.vma_records) + len(ckpt.pagemaps)
    install_ns = codec.costs.decode_ns(
        ckpt.metadata_bytes, n_records
    ) + latency.copy_ns(ckpt.cxl_bytes, src_cxl=False, dst_cxl=True)
    return ckpt, install_ns


# -- the shipper ---------------------------------------------------------------


@dataclass
class ReplicationStats:
    """Counters for one replicator's lifetime."""

    ships: int = 0
    bytes_shipped: int = 0
    dedup_hits: int = 0
    encode_cache_hits: int = 0
    failed: int = 0


@dataclass
class _InFlight:
    done_at: int
    waiters: list = field(default_factory=list)


class Replicator:
    """Ships checkpoint images between pods over the interconnect.

    In-flight transfers are deduplicated per (user, function, destination):
    a second request for the same image while it is on the wire just waits
    for the first transfer instead of paying the link twice.
    """

    def __init__(self, interconnect, queue, *, user: str = "tenant0",
                 codec: Optional[Codec] = None) -> None:
        self.interconnect = interconnect
        self.queue = queue
        self.user = user
        self.codec = codec or Codec()
        self.stats = ReplicationStats()
        self._inflight: dict[tuple, _InFlight] = {}
        # Encoded-blob cache: the wire image is canonical content (see the
        # module docstring), so pushing one checkpoint to N pods can encode
        # once and reuse the bytes.  Keyed by object identity with a strong
        # reference held, so a re-checkpoint (a new object) never matches a
        # stale entry.  Decoding stays per-ship: materialize() stores parts
        # of the wire dict by reference into the destination heap.
        self._blob_cache: dict[int, tuple[object, bytes]] = {}

    _BLOB_CACHE_MAX = 8

    def _encoded_blob(self, checkpoint) -> bytes:
        cached = self._blob_cache.get(id(checkpoint))
        if cached is not None and cached[0] is checkpoint:
            self.stats.encode_cache_hits += 1
            return cached[1]
        blob = self.codec.encode(wire_image(checkpoint))
        if len(self._blob_cache) >= self._BLOB_CACHE_MAX:
            self._blob_cache.pop(next(iter(self._blob_cache)))
        self._blob_cache[id(checkpoint)] = (checkpoint, blob)
        return blob

    def ship(
        self,
        function: str,
        src,
        dst,
        *,
        on_done: Optional[Callable[[Optional[object]], None]] = None,
    ) -> int:
        """Start (or join) a ship of ``function``'s image ``src`` -> ``dst``.

        Returns the virtual completion time.  ``on_done`` fires at that
        time with the destination store entry (None if the destination pod
        died while the image was in flight).
        """
        key = (self.user, function, dst.name)
        flight = self._inflight.get(key)
        if flight is not None:
            self.stats.dedup_hits += 1
            TRACE.count("cluster.replication_dedup")
            if on_done is not None:
                flight.waiters.append(on_done)
            return flight.done_at

        entry = src.store.peek(self.user, function)
        if entry is None:
            raise ReplicationError(
                f"pod {src.name!r} holds no checkpoint for {function!r}"
            )
        # Encode now: once the bytes are on the wire, a source-pod crash
        # cannot lose the transfer (mitosis-style ship, not remote paging).
        blob = self._encoded_blob(entry.checkpoint)
        nbytes = shipped_bytes(entry.checkpoint, blob)
        delay = self.interconnect.transfer_ns(
            src.name, dst.name, nbytes, now=self.queue.now
        )
        self.stats.ships += 1
        self.stats.bytes_shipped += nbytes
        TRACE.count("cluster.replications")
        TRACE.count("cluster.replication_bytes", nbytes)
        done_at = self.queue.now + delay
        flight = _InFlight(done_at=done_at)
        if on_done is not None:
            flight.waiters.append(on_done)
        self._inflight[key] = flight

        wire = self.codec.decode(blob)
        mechanism = entry.mechanism
        plan = getattr(entry, "plan", None)

        def land() -> None:
            self._inflight.pop(key, None)
            if dst.failed:
                self.stats.failed += 1
                TRACE.count("cluster.replications_lost")
                for waiter in flight.waiters:
                    waiter(None)
                return
            checkpoint, install_ns = materialize(wire, dst, codec=self.codec)
            if TRACE.enabled:
                TRACE.add_span(
                    "cluster.replicate",
                    self.queue.now,
                    delay + install_ns,
                    function=function,
                    src=src.name,
                    dst=dst.name,
                    bytes=nbytes,
                )

            def install() -> None:
                dst_entry = dst.store.put(
                    self.user,
                    function,
                    checkpoint,
                    mechanism=mechanism,
                    now=self.queue.now,
                )
                dst_entry.plan = plan
                TRACE.count("cluster.replications_landed")
                for waiter in flight.waiters:
                    waiter(dst_entry)

            self.queue.schedule_after(
                int(install_ns), install, label=f"replica-install:{function}"
            )

        self.queue.schedule_after(delay, land, label=f"replica-land:{function}")
        return done_at

    def inflight(self) -> int:
        return len(self._inflight)


__all__ = [
    "ReplicationError",
    "ReplicationStats",
    "Replicator",
    "encode_image",
    "materialize",
    "shipped_bytes",
    "wire_image",
]
