"""repro.cluster — federating CXL pods into one serving cluster (§8).

A pod is the unit CXL builds: one memory device, a handful of cabled
nodes, sub-microsecond loads.  A *cluster* is many pods with no shared
fabric between them — crossing a pod boundary means RDMA or Ethernet,
three orders of magnitude slower.  This package layers the paper's §8
outlook over the per-pod machinery:

* :mod:`~repro.cluster.interconnect` — the inter-pod cost model (links,
  bandwidth contention, control RTTs);
* :mod:`~repro.cluster.replication` — portable checkpoint images shipped
  between pods' object stores and re-materialized (re-rebased) on arrival;
* :mod:`~repro.cluster.membership` — pods as failure domains, heartbeat-
  detected at pod granularity;
* :mod:`~repro.cluster.router` — the global two-level scheduler routing
  each invocation to a pod by locality, load, and free CXL capacity.

:func:`build_federation` assembles all of it around one shared event
queue so every pod's porter interleaves on a single virtual timeline.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.interconnect import (
    ETHERNET,
    RDMA,
    Interconnect,
    InterPodLink,
    LinkSpec,
    link_spec,
)
from repro.cluster.membership import PodHandle, PodMembership
from repro.cluster.replication import (
    ReplicationError,
    Replicator,
    encode_image,
    materialize,
    shipped_bytes,
    wire_image,
)
from repro.cluster.router import ClusterRouter, RouterConfig, RoutingStats
from repro.cxl.bandwidth import BandwidthTracker
from repro.cxl.topology import PodTopology
from repro.os.fs.cxlfs import CxlFileSystem
from repro.porter.autoscaler import CxlPorter, PorterConfig
from repro.sim.events import EventQueue


def build_federation(
    pod_count: int,
    *,
    topology: Optional[PodTopology] = None,
    porter_config: Optional[PorterConfig] = None,
    router_config: Optional[RouterConfig] = None,
    device_gbps: Optional[float] = None,
    queue: Optional[EventQueue] = None,
) -> ClusterRouter:
    """Build ``pod_count`` identical pods federated under one router.

    Every pod gets its own fabric instantiated from ``topology`` (the
    paper testbed by default), its own CXLporter sharing the router's
    event queue, and — when ``device_gbps`` is set — its own
    :class:`BandwidthTracker`, so load concentrated on one pod inflates
    only that pod's CXL latency.
    """
    if pod_count < 1:
        raise ValueError(f"pod_count must be >= 1, got {pod_count}")
    topology = topology or PodTopology.paper_testbed()
    porter_config = porter_config or PorterConfig()
    queue = queue or EventQueue()
    pods = []
    for i in range(pod_count):
        fabric, nodes = topology.build()
        if device_gbps is not None:
            fabric.bandwidth = BandwidthTracker(capacity_gbps=device_gbps)
        cxlfs = (
            CxlFileSystem(fabric)
            if porter_config.mechanism == "criu-cxl"
            else None
        )
        pod = PodHandle(f"pod{i}", fabric, nodes, cxlfs=cxlfs)
        pod.porter = CxlPorter(
            nodes, fabric, config=porter_config, cxlfs=cxlfs, queue=queue
        )
        pods.append(pod)
    return ClusterRouter(pods, queue, config=router_config)


__all__ = [
    "ETHERNET",
    "RDMA",
    "BandwidthTracker",
    "ClusterRouter",
    "Interconnect",
    "InterPodLink",
    "LinkSpec",
    "PodHandle",
    "PodMembership",
    "ReplicationError",
    "Replicator",
    "RouterConfig",
    "RoutingStats",
    "build_federation",
    "encode_image",
    "link_spec",
    "materialize",
    "shipped_bytes",
    "wire_image",
]
