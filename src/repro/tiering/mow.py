"""Migrate-on-Write — CXLfork's default tiering policy (§4.3).

Checkpointed PTE leaves are attached at restore, so reads never fault: loads
that miss the caches go straight to CXL memory.  Stores CoW the page into
local DRAM.  Checkpoint-dirty pages are prefetched opportunistically, since
>95% of pages the parent wrote are written by children too (§4.2.1).
"""

from __future__ import annotations

import numpy as np

from repro.os.mm.faults import FaultKind
from repro.tiering.policy import TieringPolicy


class MigrateOnWrite(TieringPolicy):
    """Share read-only state on the CXL tier; copy only what is written."""

    name = "mow"
    attach_leaves = True
    copy_fault_kind = FaultKind.COW_CXL
    prefetch_dirty = True

    def select_copy_on_read(self, a_bits: np.ndarray, hot_bits: np.ndarray) -> np.ndarray:
        # With attached leaves read faults do not normally occur; if one
        # does (e.g. an unprefetched hole), keep the page on CXL.
        return np.zeros_like(a_bits, dtype=bool)


__all__ = ["MigrateOnWrite"]
