"""Checkpoint-guided dirty-page prefetch (§4.2.1, "Optimizing CXL Page Faults").

CoW faults over CXL cost ~2.5 us each, ~500 ns of which is TLB shootdown.
Because >95% of the pages the parent wrote are written by its children too,
CXLfork prefetches checkpoint-*dirty* pages into local memory right after
restore, off the critical path.  Pages the prefetcher wins the race for
never CoW-fault; the child simply finds them local and writable.

We model the race with an ``effectiveness`` fraction: that share of dirty
pages is installed locally before the child writes them; the rest fault
normally.  The copy time is reported as ``background_ns`` and *not* charged
to the restore critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.os.kernel import Kernel
from repro.os.mm.pagetable import PTES_PER_LEAF, PageTable
from repro.os.mm.pte import PTE_FRAME_SHIFT, PteFlags, make_ptes, ptes_flag_mask
from repro.os.proc.task import Task
from repro.sim.units import PAGE_SIZE


@dataclass(frozen=True)
class PrefetchResult:
    """What a prefetch pass did."""

    pages: int
    background_ns: float


class DirtyPagePrefetcher:
    """Copies checkpoint-dirty pages into the child's local memory."""

    def __init__(self, effectiveness: float = 0.9) -> None:
        if not 0.0 <= effectiveness <= 1.0:
            raise ValueError(f"effectiveness must be in [0, 1]: {effectiveness}")
        self.effectiveness = effectiveness

    def _race_mask(self, n: int) -> np.ndarray:
        """Deterministic subset of size ~effectiveness * n, spread evenly."""
        if n == 0:
            return np.zeros(0, dtype=bool)
        wins = int(round(self.effectiveness * n))
        mask = np.zeros(n, dtype=bool)
        if wins > 0:
            mask[np.linspace(0, n - 1, wins).astype(np.int64)] = True
        return mask

    def dirty_specs(self, ckpt_pagetable: PageTable) -> list:
        """Precompute per-leaf ``(leaf_index, sel, count)`` selections.

        Safe to memoize across restores of one checkpoint (the restore-plan
        cache does): DIRTY bits on checkpointed leaves are stable after the
        seal — checkpoint PTEs never carry WRITE, so no child write can mark
        them dirty — and the race mask is a deterministic function of the
        dirty count and ``effectiveness``.
        """
        dirty_flag = int(PteFlags.PRESENT) | int(PteFlags.DIRTY)
        specs = []
        for leaf_index, ckpt_leaf in ckpt_pagetable.leaves():
            dirty = ptes_flag_mask(ckpt_leaf.ptes, dirty_flag)
            n_dirty = int(np.count_nonzero(dirty))
            if n_dirty == 0:
                continue
            won = self._race_mask(n_dirty)
            if not np.any(won):
                continue
            sel = np.zeros(PTES_PER_LEAF, dtype=bool)
            sel[np.nonzero(dirty)[0][won]] = True
            specs.append((leaf_index, sel, int(np.count_nonzero(sel))))
        return specs

    def prefetch(
        self,
        kernel: Kernel,
        task: Task,
        ckpt_pagetable: PageTable,
        specs: list = None,
    ) -> PrefetchResult:
        """Install local copies of (a fraction of) checkpoint-dirty pages.

        ``specs`` optionally supplies memoized :meth:`dirty_specs` output;
        the per-child installs (privatize, allocate, map) stay live either
        way.
        """
        total_pages = 0
        total_ns = 0.0
        backing = task.mm.ckpt_backing
        holds_refs = backing is None or backing.holds_frame_refs
        if specs is None:
            specs = self.dirty_specs(ckpt_pagetable)
        for leaf_index, sel, count in specs:
            child_leaf, copied = None, False
            if task.mm.pagetable.has_leaf(leaf_index):
                child_leaf, copied = task.mm.pagetable.privatize_leaf(leaf_index)
            else:
                child_leaf = task.mm.pagetable.ensure_leaf(leaf_index)
            if copied:
                total_ns += kernel.latency.page_copy_ns(src_cxl=True, dst_cxl=False)

            frames = kernel.alloc_local_frames(task.mm, count)
            old = child_leaf.ptes[sel]
            was_present_cxl = (
                (old & np.int64(int(PteFlags.PRESENT))) != 0
            ) & ((old & np.int64(int(PteFlags.CXL))) != 0)
            if np.any(was_present_cxl) and holds_refs:
                kernel.node.fabric.put_frames(
                    (old[was_present_cxl] >> PTE_FRAME_SHIFT).astype(np.int64)
                )
            flags = (
                PteFlags.PRESENT
                | PteFlags.WRITE
                | PteFlags.USER
                | PteFlags.ACCESSED
                | PteFlags.DIRTY
            )
            child_leaf.ptes[sel] = make_ptes(frames, int(flags))
            total_pages += count
            total_ns += kernel.latency.copy_ns(
                count * PAGE_SIZE, src_cxl=True, dst_cxl=False
            )
        return PrefetchResult(pages=total_pages, background_ns=total_ns)


__all__ = ["DirtyPagePrefetcher", "PrefetchResult"]
