"""Hybrid tiering — A-bit-guided placement (§4.3).

The checkpointed page tables carry the parent's Accessed bits (harvested in
steady state by CXLporter).  On a fault, a page whose A bit is set — or
which user space explicitly marked HOT — is copied to local memory; a cold
page is mapped in place on the CXL tier, preserving deduplication.
"""

from __future__ import annotations

import numpy as np

from repro.os.mm.faults import FaultKind
from repro.tiering.policy import TieringPolicy


class HybridTiering(TieringPolicy):
    """Copy hot (A-bit / user-marked) pages locally; leave cold pages on CXL."""

    name = "hybrid"
    attach_leaves = False
    copy_fault_kind = FaultKind.MOA_COPY
    prefetch_dirty = True

    def select_copy_on_read(self, a_bits: np.ndarray, hot_bits: np.ndarray) -> np.ndarray:
        return a_bits | hot_bits


class SyncHybridTiering(HybridTiering):
    """The §4.3 alternative the paper rejects: prefetch A-marked pages
    *synchronously during restore* rather than on access.  Fewer CXL
    faults, but the restore tail latency absorbs the whole copy."""

    name = "hybrid-sync"
    #: Consumed by the CXLfork restore path.
    sync_prefetch_hot = True


__all__ = ["HybridTiering", "SyncHybridTiering"]
