"""A-bit harvesting, resetting, and user-declared hot pages (§4.3).

Because checkpointed leaves are attached by restored processes, hardware
page walks on *any* node set the Accessed bits of the checkpointed CXL
PTEs.  User space (CXLporter) periodically resets them through a dedicated
interface to keep the working-set estimate fresh, and profilers can stamp
pages HOT explicitly to steer future restores.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.os.mm.pagetable import LEAF_SHIFT, PTES_PER_LEAF, PageTable
from repro.os.mm.pte import PteFlags, ptes_clear_flags, ptes_flag_mask

#: Cost of the user-space interface updating one checkpointed leaf over CXL.
_LEAF_UPDATE_NS = 800.0


def count_access_bits(pagetable: PageTable) -> tuple[int, int]:
    """``(accessed, present)`` counts over a (checkpointed) page table."""
    accessed = 0
    present = 0
    for _, leaf in pagetable.leaves():
        pmask = ptes_flag_mask(leaf.ptes, PteFlags.PRESENT)
        amask = ptes_flag_mask(leaf.ptes, int(PteFlags.PRESENT) | int(PteFlags.ACCESSED))
        present += int(np.count_nonzero(pmask))
        accessed += int(np.count_nonzero(amask))
    return accessed, present


def reset_access_bits(pagetable: PageTable, *, clear_dirty: bool = False) -> float:
    """Clear all A bits (the periodic working-set re-estimation).

    ``clear_dirty`` also clears D bits — CXLporter does this once after a
    function's first invocation so the bits capture the steady state rather
    than initialization writes (§5); the *periodic* reset clears only A.

    Returns the virtual-time cost; the caller charges it to whichever node
    ran the user-space controller.
    """
    flags = int(PteFlags.ACCESSED)
    if clear_dirty:
        flags |= int(PteFlags.DIRTY)
    cost = 0.0
    for _, leaf in pagetable.leaves():
        mask = ptes_flag_mask(leaf.ptes, PteFlags.PRESENT)
        ptes_clear_flags(leaf.ptes, mask, flags)
        cost += _LEAF_UPDATE_NS
    return cost


def mark_hot_pages(pagetable: PageTable, vpns: Iterable[int]) -> float:
    """Set the HOT bit on specific pages (user-identified hot pages).

    Returns the virtual-time cost.  Unknown/unmapped vpns are ignored, as
    the real interface would silently skip holes.
    """
    vpn_arr = np.asarray(list(vpns), dtype=np.int64)
    if vpn_arr.size == 0:
        return 0.0
    cost = 0.0
    touched_leaves = set()
    for vpn in vpn_arr:
        leaf_index = int(vpn) >> LEAF_SHIFT
        if not pagetable.has_leaf(leaf_index):
            continue
        leaf = pagetable.leaf(leaf_index)
        entry = int(vpn) & (PTES_PER_LEAF - 1)
        if leaf.ptes[entry] & np.int64(int(PteFlags.PRESENT)):
            leaf.ptes[entry] |= np.int64(int(PteFlags.HOT))
            touched_leaves.add(leaf_index)
    cost += len(touched_leaves) * _LEAF_UPDATE_NS
    return cost


__all__ = ["count_access_bits", "reset_access_bits", "mark_hot_pages"]
