"""Online promotion: migrate a running instance's hot CXL pages to local.

When CXLporter promotes a function to hybrid tiering, instances restored
earlier under migrate-on-write still map their read-only state on the CXL
tier.  The runtime fixes them up in the background: pages whose Accessed
bit is set (they are being used) are copied into local DRAM.  Cold pages
stay shared on CXL, preserving deduplication.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.os.kernel import Kernel
from repro.os.mm.pte import PTE_FRAME_SHIFT, PteFlags, make_ptes
from repro.os.proc.task import Task
from repro.sim.units import PAGE_SIZE
from repro.telemetry import TRACE


@dataclass(frozen=True)
class MigrationResult:
    """What one promotion pass moved."""

    pages: int
    background_ns: float


def migrate_hot_pages(kernel: Kernel, task: Task) -> MigrationResult:
    """Copy accessed CXL-mapped pages of ``task`` into local memory.

    Returns the page count and the background time (charged off the
    request critical path).  Safe to call repeatedly; a second pass finds
    nothing new unless fresh pages were accessed.
    """
    latency = kernel.latency
    backing = task.mm.ckpt_backing
    holds_refs = backing is None or backing.holds_frame_refs
    total_pages = 0
    total_ns = 0.0
    hot_flags = np.int64(
        int(PteFlags.PRESENT) | int(PteFlags.CXL) | int(PteFlags.ACCESSED)
    )
    for leaf_index in list(task.mm.pagetable.leaf_indices()):
        leaf = task.mm.pagetable.leaf(leaf_index)
        hot = (leaf.ptes & hot_flags) == hot_flags
        count = int(np.count_nonzero(hot))
        if count == 0:
            continue
        leaf, copied = task.mm.pagetable.privatize_leaf(leaf_index)
        if copied:
            total_ns += latency.page_copy_ns(src_cxl=True, dst_cxl=False)
        old_frames = (leaf.ptes[hot] >> PTE_FRAME_SHIFT).astype(np.int64)
        frames = kernel.alloc_local_frames(task.mm, count)
        flags = PteFlags.PRESENT | PteFlags.WRITE | PteFlags.USER | PteFlags.ACCESSED
        leaf.ptes[hot] = make_ptes(frames, int(flags))
        if holds_refs:
            kernel.node.fabric.put_frames(old_frames)
        total_pages += count
        total_ns += latency.copy_ns(count * PAGE_SIZE, src_cxl=True, dst_cxl=False)
        total_ns += kernel.fault_costs.tlb.shootdown_cost_ns(count, batched=True)
    if TRACE.enabled and total_pages:
        TRACE.add_span(
            "tiering.migrate_hot_pages", kernel.clock.now, total_ns,
            clock=kernel.clock, comm=task.comm, pages=total_pages,
        )
        TRACE.count("tiering.migrated_pages", total_pages)
    return MigrationResult(pages=total_pages, background_ns=total_ns)


__all__ = ["migrate_hot_pages", "MigrationResult"]
