"""Checkpointed-state tiering between local DRAM and CXL memory (§4.3).

Three policies control when checkpointed read-only pages move to the
restoring node's local memory:

* :class:`MigrateOnWrite` (default) — attach checkpointed PTE leaves, copy
  only on stores, opportunistically prefetch checkpoint-dirty pages;
* :class:`MigrateOnAccess` — no attachment; every first access copies the
  page locally (the Mitosis/FaaSMem behaviour);
* :class:`HybridTiering` — A-bit-guided: accessed-in-the-past pages are
  copied on access, cold pages are mapped in place on the CXL tier.
"""

from repro.tiering.hotness import (
    count_access_bits,
    mark_hot_pages,
    reset_access_bits,
)
from repro.tiering.hybrid import HybridTiering
from repro.tiering.moa import MigrateOnAccess
from repro.tiering.mow import MigrateOnWrite
from repro.tiering.policy import TieringPolicy
from repro.tiering.prefetch import DirtyPagePrefetcher, PrefetchResult

__all__ = [
    "TieringPolicy",
    "MigrateOnWrite",
    "MigrateOnAccess",
    "HybridTiering",
    "DirtyPagePrefetcher",
    "PrefetchResult",
    "count_access_bits",
    "mark_hot_pages",
    "reset_access_bits",
]
