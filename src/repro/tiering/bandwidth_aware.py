"""Bandwidth-aware tiering (the §8 extension, implemented).

The paper's policies decide placement from *latency* signals (A bits, SLO
misses).  In a pod with many nodes, the shared device's bandwidth becomes
the bottleneck: every clone reading its working set from CXL slows every
other clone.  This policy watches the fabric's utilization and, once it
crosses a threshold, starts copying even read-only hot pages to local
memory on access — trading deduplication for fabric headroom.

Below the threshold it behaves exactly like hybrid tiering.
"""

from __future__ import annotations


import numpy as np

from repro.cxl.fabric import CxlFabric
from repro.tiering.hybrid import HybridTiering


class BandwidthAwareTiering(HybridTiering):
    """Hybrid tiering that stops sharing when the fabric saturates."""

    name = "bandwidth-aware"

    def __init__(
        self,
        fabric: CxlFabric,
        *,
        utilization_threshold: float = 0.6,
    ) -> None:
        if not 0.0 < utilization_threshold < 1.0:
            raise ValueError(f"bad threshold: {utilization_threshold}")
        self.fabric = fabric
        self.utilization_threshold = utilization_threshold

    def _fabric_pressured(self) -> bool:
        tracker = self.fabric.bandwidth
        if tracker is None:
            return False
        return tracker.utilization() >= self.utilization_threshold

    def select_copy_on_read(self, a_bits: np.ndarray, hot_bits: np.ndarray) -> np.ndarray:
        if self._fabric_pressured():
            # Saturated fabric: pull everything touched off the device.
            return np.ones_like(a_bits, dtype=bool)
        return super().select_copy_on_read(a_bits, hot_bits)


__all__ = ["BandwidthAwareTiering"]
