"""The tiering-policy interface consumed by restore and the fault path."""

from __future__ import annotations

import abc

import numpy as np

from repro.os.mm.faults import FaultKind


class TieringPolicy(abc.ABC):
    """How a restored process's checkpointed pages move between tiers.

    The kernel fault path calls :meth:`select_copy_on_read` for non-present
    checkpoint-covered pages; the restore path consults
    :attr:`attach_leaves` / :attr:`prefetch_dirty`.
    """

    #: Policy identifier (used in experiment tables).
    name: str = "abstract"
    #: Whether restore attaches the checkpointed PTE leaves (§4.2.1).  When
    #: False, the child's page table starts empty and every first access
    #: faults into :meth:`select_copy_on_read`.
    attach_leaves: bool = False
    #: Fault kind charged when a page is copied from the checkpoint tier.
    copy_fault_kind: FaultKind = FaultKind.MOA_COPY
    #: Whether restore opportunistically prefetches checkpoint-dirty pages
    #: into local memory (§4.2.1, "Optimizing CXL Page Faults").
    prefetch_dirty: bool = False

    @abc.abstractmethod
    def select_copy_on_read(self, a_bits: np.ndarray, hot_bits: np.ndarray) -> np.ndarray:
        """Which faulting pages to *copy* to local memory on a read.

        ``a_bits``/``hot_bits`` are boolean arrays over the faulting pages,
        taken from the checkpointed PTEs.  Pages not selected are mapped in
        place on the CXL tier.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


__all__ = ["TieringPolicy"]
