"""Migrate-on-Access — the "no tiering" policy (§4.3).

Pages are copied to local memory on first access, as Mitosis and
FaaSMem-style systems do.  Restore does not attach checkpointed PTE leaves;
the child's page table starts empty and fills via CXL faults.
"""

from __future__ import annotations

import numpy as np

from repro.os.mm.faults import FaultKind
from repro.tiering.policy import TieringPolicy


class MigrateOnAccess(TieringPolicy):
    """Copy every touched page into local DRAM."""

    name = "moa"
    attach_leaves = False
    copy_fault_kind = FaultKind.MOA_COPY
    prefetch_dirty = False

    def select_copy_on_read(self, a_bits: np.ndarray, hot_bits: np.ndarray) -> np.ndarray:
        return np.ones_like(a_bits, dtype=bool)


__all__ = ["MigrateOnAccess"]
