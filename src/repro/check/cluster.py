"""Cross-pod correctness checks for the federation layer.

The invariant the cluster adds on top of the per-pod ones: **frames never
cross fabrics**.  A checkpoint stored in a pod's object store must be
backed entirely by that pod's own CXL device (its heap, its data frames,
its file system) — replication *copies* images, it never aliases them, so
a pod failure can only ever lose state that lived on that pod.  A
checkpoint whose backing points at another pod's fabric would restore
from memory that does not exist locally: exactly the class of bug a
botched materialize would introduce and nothing inside one pod's audit
can see.

Composes with :mod:`repro.faults.audit`: each pod's owner-derived
refcount audit runs as-is, then the federation sweep checks ownership of
every stored image against the pod that stores it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check import CHECK


@dataclass
class FederationAudit:
    """Result of one cross-pod sweep."""

    pods_audited: int = 0
    checkpoints_checked: int = 0
    #: Human-readable violation descriptions (empty == clean).
    violations: list = field(default_factory=list)
    #: Per-pod leak audits (name -> PodAudit) from the intra-pod checker.
    pod_audits: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.violations and all(
            a.clean for a in self.pod_audits.values()
        )


def audit_federation(router, *, include_pod_audits: bool = True) -> FederationAudit:
    """Audit frame ownership across all of a router's pods.

    For every object-store entry on every pod: the checkpoint's fabric
    (CXLfork) or file system (CRIU) must be the storing pod's own.  When
    ``include_pod_audits`` is set, each live pod's
    :meth:`~repro.porter.autoscaler.CxlPorter.audit_leaks` runs too, so
    one call covers both levels of the hierarchy.
    """
    report = FederationAudit()
    for pod in router.membership.pods():
        report.pods_audited += 1
        for entry in pod.porter.store.entries():
            report.checkpoints_checked += 1
            checkpoint = entry.checkpoint
            fabric = getattr(checkpoint, "fabric", None)
            if fabric is not None and fabric is not pod.fabric:
                report.violations.append(
                    f"pod {pod.name}: checkpoint cid={entry.cid} "
                    f"({entry.function}) backed by a foreign fabric"
                )
            cxlfs = getattr(checkpoint, "cxlfs", None)
            if cxlfs is not None and cxlfs is not pod.cxlfs:
                report.violations.append(
                    f"pod {pod.name}: checkpoint cid={entry.cid} "
                    f"({entry.function}) backed by a foreign file system"
                )
            heap = getattr(checkpoint, "heap", None)
            if heap is not None and getattr(heap, "fabric", None) is not None \
                    and heap.fabric is not pod.fabric:
                report.violations.append(
                    f"pod {pod.name}: checkpoint cid={entry.cid} "
                    f"({entry.function}) heap lives on a foreign fabric"
                )
        if include_pod_audits and not pod.failed:
            report.pod_audits[pod.name] = pod.porter.audit_leaks()
    if CHECK.enabled:
        CHECK.stats.invariant_runs += 1
        if not report.clean:
            CHECK.stats.violations += len(report.violations)
            CHECK.fail(
                "federation audit: " + "; ".join(report.violations[:5])
            )
    return report


__all__ = ["FederationAudit", "audit_federation"]
