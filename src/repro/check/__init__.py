"""repro.check — correctness tooling for the rfork mechanisms.

The paper's core claim is *semantic equivalence*: a CXLfork child must be
indistinguishable from a CRIU-restored or Mitosis-forked child — same
logical address-space contents, protections, and CoW behaviour — only
cheaper.  This package proves it on every run that opts in:

* :mod:`repro.check.oracle` — differential address-space oracle.  Snapshots
  a parent's logical contents and diffs any child against it (and against
  children produced by the other mechanisms) at page granularity.
* :mod:`repro.check.invariants` — pod-wide invariant checker runnable at
  clock barriers: frame refcounts vs. PTE back-references, no dangling
  ATTACHED leaves, shootdown/TLB soundness proxies, allocator totals vs.
  the ``faults.audit`` owner model.
* :mod:`repro.check.fuzz` — seed-reproducible scenario fuzzer driving
  randomized fork/write/read/migrate/crash interleavings through all three
  mechanisms in lockstep.
* :mod:`repro.check.mutation` — env-var-gated deliberate bugs that the
  oracle must catch (the checker's own smoke test).

Like :data:`repro.telemetry.TRACE`, a process-global :data:`CHECK` toggle
lets the CLI (``python -m repro run <exp> --check``) and the experiment
plumbing enable checking without threading a flag through every call site.
All checks are read-only walks of simulator state and never advance a
virtual clock, so enabling them cannot perturb experiment outputs — bench
digests stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class CheckFailure(AssertionError):
    """A correctness check failed (oracle divergence or invariant violation)."""


@dataclass
class CheckStats:
    """Counters for one checking session."""

    oracle_runs: int = 0
    invariant_runs: int = 0
    divergences: int = 0
    violations: int = 0
    failures: list = field(default_factory=list)


class CheckRuntime:
    """Process-global switch for the correctness checkers.

    Disabled by default (zero overhead).  When enabled, the experiment
    plumbing snapshots parents, diffs children, and runs invariant sweeps;
    any failure raises :class:`CheckFailure` unless ``raise_on_failure`` is
    cleared, in which case failures accumulate in ``stats.failures``.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.raise_on_failure = True
        self.stats = CheckStats()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.enabled = False
        self.raise_on_failure = True
        self.stats = CheckStats()

    def fail(self, message: str) -> None:
        """Record a check failure; raise unless in accumulate mode."""
        self.stats.failures.append(message)
        if self.raise_on_failure:
            raise CheckFailure(message)

    def summary(self) -> str:
        s = self.stats
        status = "clean" if not s.failures else f"{len(s.failures)} FAILURE(S)"
        return (
            f"check: {s.oracle_runs} oracle run(s), "
            f"{s.invariant_runs} invariant sweep(s), "
            f"{s.divergences} divergence(s), {s.violations} violation(s) — {status}"
        )


#: The process-global checking runtime (mirrors ``telemetry.TRACE``).
CHECK = CheckRuntime()

__all__ = ["CHECK", "CheckFailure", "CheckRuntime", "CheckStats"]
