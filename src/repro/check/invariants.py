"""Pod-wide invariant checker, runnable at any clock barrier.

Four families of invariants, each of which the paper's design implicitly
relies on:

1. **Per-task MMU sanity** — every present PTE lies inside a VMA; a
   hardware-writable PTE implies a writable VMA and never carries the COW
   bit; a CXL-flagged PTE maps a fabric frame (and vice versa); a
   ``cxl_resident`` PTE leaf maps only CXL frames.
2. **Shootdown/TLB soundness proxies** — the TLB itself is a cost model
   (:class:`repro.os.mm.tlb.TlbModel` keeps no entry state), so the checker
   enforces the property shootdowns exist to protect: no hardware-writable
   node-local mapping of a frame that anyone else can still read (pool
   refcount > 1 would mean a missed CoW break / missed shootdown), and no
   hardware-writable mapping of a CXL frame at all (checkpoint replicas are
   immutable and must be mapped read-only, §4.2.1).
3. **Leaf attach/refcount back-references** — the ATTACHED PTE/VMA leaves
   of §4.2.1 are refcounted; the checker counts actual references from
   every live task and checkpoint and demands ``leaf.refcount`` match
   exactly (a higher count is a dangling attach that will leak the leaf; a
   lower one will free it while still mapped).
4. **Allocator totals vs. the owner model** — every pool's
   ``allocated_frames`` equals its population of nonzero refcounts, and the
   pod-wide :func:`repro.faults.audit.audit_pod` owner walk agrees with the
   pools (no leaked, missing, or miscounted frames).
5. **Restore-plan coherence** — a memoized restore plan
   (:mod:`repro.rfork.restoreplan`) whose invalidation key still matches
   the live epochs must agree with a fresh walk of the image it describes;
   disagreement means an in-place image mutation skipped its epoch bump.

All checks are read-only and never advance a virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from repro.check import CHECK, CheckFailure
from repro.faults.audit import audit_pod
from repro.os.mm.pte import PTE_FRAME_SHIFT, PteFlags
from repro.os.mm.vma import VmaPerms

_P = np.int64(int(PteFlags.PRESENT))
_W = np.int64(int(PteFlags.WRITE))
_COW = np.int64(int(PteFlags.COW))
_CXL = np.int64(int(PteFlags.CXL))


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with enough context to debug it."""

    kind: str
    where: str
    detail: str

    def describe(self) -> str:
        return f"[{self.kind}] {self.where}: {self.detail}"


@dataclass
class InvariantReport:
    """All violations found by one sweep."""

    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def add(self, kind: str, where: str, detail: str) -> None:
        self.violations.append(InvariantViolation(kind, where, detail))

    def describe(self) -> str:
        if self.clean:
            return "invariants clean"
        lines = [f"{len(self.violations)} invariant violation(s):"]
        lines += [f"  {v.describe()}" for v in self.violations[:12]]
        if len(self.violations) > 12:
            lines.append(f"  ... {len(self.violations) - 12} more")
        return "\n".join(lines)


def check_task(task, report: Optional[InvariantReport] = None) -> InvariantReport:
    """Per-task MMU invariants (families 1 and 2 above).

    Called standalone (``report=None``) this is its own sweep and accounts
    to :data:`CHECK`; inside :func:`check_pod` the caller accounts instead.
    """
    standalone = report is None
    report = report if report is not None else InvariantReport()
    node = task.node
    mm = task.mm
    backing = mm.ckpt_backing
    holds = backing is None or backing.holds_frame_refs
    who = f"{task.comm}/{task.pid}@{node.name}"

    vma_present = 0
    for vma in mm.vmas:
        ptes = mm.pagetable.gather_ptes(vma.start_vpn, vma.npages)
        present = (ptes & _P) != 0
        n_present = int(np.count_nonzero(present))
        vma_present += n_present
        if n_present == 0:
            continue
        idx = np.nonzero(present)[0]
        pp = ptes[present]
        frames = (pp >> np.int64(PTE_FRAME_SHIFT)).astype(np.int64)
        hw_w = (pp & _W) != 0
        on_cxl = (pp & _CXL) != 0
        is_cow = (pp & _COW) != 0

        both = hw_w & is_cow
        if np.any(both):
            vpn = vma.start_vpn + int(idx[both][0])
            report.add("pte-flags", who, f"WRITE and COW both set at vpn {vpn}")
        if np.any(hw_w) and not (vma.perms & VmaPerms.WRITE):
            vpn = vma.start_vpn + int(idx[hw_w][0])
            report.add(
                "pte-flags", who,
                f"hardware-writable PTE in read-only VMA at vpn {vpn}",
            )
        if np.any(hw_w & on_cxl):
            vpn = vma.start_vpn + int(idx[hw_w & on_cxl][0])
            report.add(
                "tlb-proxy", who,
                f"writable mapping of an immutable CXL replica at vpn {vpn}",
            )

        # Frame-ownership cross-check: the flag decides which pool must own
        # (and refcount) the frame.
        cxl_frames = frames[on_cxl]
        for frame in cxl_frames[:1024]:
            if not node.fabric.is_cxl_frame(int(frame)):
                report.add(
                    "frame-owner", who,
                    f"CXL-flagged PTE maps non-fabric frame {int(frame)}",
                )
        if cxl_frames.size and holds:
            pool = node.fabric.device.frames
            counts = pool.refcounts(cxl_frames)
            if np.any(counts <= 0) and not pool.quarantined:
                frame = int(cxl_frames[np.nonzero(counts <= 0)[0][0]])
                report.add("frame-owner", who, f"CXL frame {frame} mapped but freed")
        local_frames = frames[~on_cxl]
        if local_frames.size and not node.dram.quarantined:
            bad_range = (local_frames < node.dram.base) | (
                local_frames >= node.dram.limit
            )
            if np.any(bad_range):
                frame = int(local_frames[np.nonzero(bad_range)[0][0]])
                report.add(
                    "frame-owner", who,
                    f"local PTE maps frame {frame} outside {node.name}'s DRAM pool",
                )
            else:
                counts = node.dram.refcounts(local_frames)
                if np.any(counts <= 0):
                    frame = int(local_frames[np.nonzero(counts <= 0)[0][0]])
                    report.add(
                        "frame-owner", who, f"local frame {frame} mapped but freed"
                    )
                # Shootdown soundness: hardware-writable implies exclusive.
                local_w = hw_w[~on_cxl]
                stale = local_w & (counts > 1)
                if np.any(stale):
                    pos = np.nonzero(stale)[0][0]
                    frame = int(local_frames[pos])
                    report.add(
                        "tlb-proxy", who,
                        f"writable mapping of shared frame {frame} "
                        f"(refcount {int(counts[pos])}) — missed CoW/shootdown",
                    )

    # Coverage: every present PTE accounted for by some VMA.  VMAs cannot
    # overlap (insert() rejects that), so equality is exact.
    table_present = mm.pagetable.count_present()
    if table_present != vma_present:
        report.add(
            "vma-coverage", who,
            f"{table_present - vma_present} present PTE(s) outside every VMA",
        )

    # cxl_resident leaves must map only CXL frames (they *are* checkpoint
    # storage; a local frame in one means a half-finished privatize).
    for leaf_index, leaf in mm.pagetable.leaves():
        if not leaf.cxl_resident:
            continue
        present = (leaf.ptes & _P) != 0
        if np.any(present & ((leaf.ptes & _CXL) == 0)):
            report.add(
                "leaf-residency", who,
                f"cxl_resident PTE leaf {leaf_index} maps node-local memory",
            )
    if standalone and CHECK.enabled:
        CHECK.stats.invariant_runs += 1
        if not report.clean:
            CHECK.stats.violations += len(report.violations)
            CHECK.stats.failures.append(report.describe())
    return report


def _census_note(refs: dict, leaf) -> None:
    entry = refs.get(id(leaf))
    if entry is None:
        refs[id(leaf)] = [leaf, 1]
    else:
        entry[1] += 1


def check_leaf_refcounts(
    nodes: Iterable,
    checkpoints: Iterable = (),
    report: Optional[InvariantReport] = None,
) -> InvariantReport:
    """Family 3: count real references to every PTE/VMA leaf and compare
    against the leaf's refcount."""
    report = report if report is not None else InvariantReport()
    pte_refs: dict = {}
    vma_refs: dict = {}
    for node in nodes:
        if node.failed:
            continue
        for task in node.kernel.tasks():
            for _, leaf in task.mm.pagetable.leaves():
                _census_note(pte_refs, leaf)
            for leaf in task.mm.vmas.leaves():
                _census_note(vma_refs, leaf)
    for ckpt in checkpoints:
        if getattr(ckpt, "_deleted", False):
            continue
        pagetable = getattr(ckpt, "pagetable", None)
        if pagetable is not None:
            for _, leaf in pagetable.leaves():
                _census_note(pte_refs, leaf)
        for leaf in getattr(ckpt, "vma_leaves", ()):
            _census_note(vma_refs, leaf)
    for family, refs in (("pte-leaf", pte_refs), ("vma-leaf", vma_refs)):
        for leaf, seen in refs.values():
            if leaf.refcount == seen:
                continue
            kind = "dangling-attach" if leaf.refcount > seen else "refcount-underflow"
            report.add(
                kind, family,
                f"{leaf!r}: refcount {leaf.refcount}, {seen} live reference(s)",
            )
    return report


def check_pod(
    fabric,
    nodes: Iterable,
    *,
    cxlfs=None,
    checkpoints: Iterable = (),
    ghost_pools: Iterable = (),
    audit: bool = True,
    raise_on_violation: bool = False,
) -> InvariantReport:
    """Run every invariant family across a pod at a clock barrier.

    ``checkpoints`` must list every live checkpoint, exactly as for
    :func:`repro.faults.audit.audit_pod` — an unlisted one shows up as both
    a frame leak and a leaf-refcount mismatch, which is the point.
    """
    nodes = list(nodes)
    checkpoints = list(checkpoints)
    report = InvariantReport()
    for node in nodes:
        if node.failed:
            continue
        for task in node.kernel.tasks():
            check_task(task, report)
    check_leaf_refcounts(nodes, checkpoints, report)

    # Family 5: restore-plan coherence.  A memoized plan whose key still
    # matches the current epochs must describe the image as it is *now*:
    # its cached verify frame set must equal a fresh checkpoint_frames
    # walk.  A mismatch means some image mutation forgot its epoch bump —
    # the exact bug class the plan cache's invalidation contract exists
    # to prevent (and the stale-restore-plan mutation simulates).
    from repro.ras.checksum import checkpoint_frames as _ckpt_frames
    from repro.rfork.restoreplan import cached_plan, plan_key

    for ckpt in checkpoints:
        if getattr(ckpt, "_deleted", False):
            continue
        plan = cached_plan(ckpt)
        if plan is None or plan.frames is None:
            continue  # planless, or a frameless (mitosis) image
        if plan.key != plan_key(ckpt, fabric):
            continue  # stale by its own account; plan_for will rebuild it
        fresh = _ckpt_frames(ckpt)
        if plan.frames.shape != fresh.shape or not np.array_equal(
            plan.frames, fresh
        ):
            report.add(
                "stale-restore-plan", getattr(ckpt, "comm", "?"),
                f"plan caches {plan.frames.size} verify frame(s) but the "
                f"image now spans {fresh.size}; an in-place image mutation "
                "missed its invalidate_restore_plan/epoch bump",
            )

    # Family 4a: each pool's totals agree with its own refcount population.
    pools = [fabric.device.frames] + [n.dram for n in nodes]
    for pool in pools:
        if pool.quarantined:
            continue
        if pool.allocated_frames != pool.live_frames:
            report.add(
                "pool-totals", pool.name,
                f"allocated_frames={pool.allocated_frames} but "
                f"{pool.live_frames} frame(s) hold a nonzero refcount",
            )

    # Family 4b: the faults.audit owner model agrees with the pools.
    if audit:
        pod_audit = audit_pod(
            fabric,
            nodes,
            cxlfs=cxlfs,
            checkpoints=checkpoints,
            ghost_pools=ghost_pools,
            # Raw slot, not the lazy property: a dedup-off pod must not
            # grow an empty index just because the checker looked.
            chunk_index=getattr(fabric, "_chunk_index", None),
        )
        if not pod_audit.clean:
            report.add("frame-audit", "pod", pod_audit.describe())

    if CHECK.enabled:
        CHECK.stats.invariant_runs += 1
        if not report.clean:
            CHECK.stats.violations += len(report.violations)
            CHECK.stats.failures.append(report.describe())
    if raise_on_violation and not report.clean:
        raise CheckFailure(report.describe())
    return report


__all__ = [
    "InvariantReport",
    "InvariantViolation",
    "check_leaf_refcounts",
    "check_pod",
    "check_task",
]
