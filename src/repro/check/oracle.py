"""Differential address-space oracle (the paper's semantic-equivalence claim).

The simulator models page *placement* (which frame backs each vpn, on which
tier), not page *bytes*.  The oracle therefore checks equivalence at the
semantic level: every vpn of a task resolves to a **content label** saying
where its bytes logically come from —

* ``zero``          — an untouched anonymous page (demand-zero);
* ``snap:<vpn>``    — the bytes the parent held at ``vpn`` when it was
  snapshotted (private anonymous data, or a privately modified file page);
* ``file:<path>+<pgoff>`` — the backing file's pristine bytes;
* ``write:<op>``    — the bytes stored by post-restore write ``<op>`` of
  the driving scenario's ledger;
* ``anomaly``       — a page whose provenance cannot be justified from the
  mechanism's own data structures (an aliased CXL frame, a lost write, a
  page-cache mismatch); always a divergence.

A correct remote fork preserves labels exactly: a fresh child's resolved
view equals the parent snapshot, and children produced by *different*
mechanisms that replay the same write ledger resolve to identical views.
The resolver is deliberately suspicious — it re-derives every label from
PTE flags, checkpoint frame tables, page-cache state, and pool refcounts,
so a mechanism that silently drops a CoW, aliases the wrong CXL frame, or
skips a dirty page cannot launder the error through the ledger.

Everything here is a read-only walk: no faults are taken, no frames move,
and no virtual clock advances — running the oracle cannot perturb an
experiment's outputs (bench digests stay bit-identical).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.check import CHECK, CheckFailure
from repro.os.mm.pte import PTE_FRAME_SHIFT, PteFlags
from repro.os.mm.vma import VmaKind

_P = np.int64(int(PteFlags.PRESENT))
_W = np.int64(int(PteFlags.WRITE))
_D = np.int64(int(PteFlags.DIRTY))
_CXL = np.int64(int(PteFlags.CXL))

#: Content-label kinds (see module docstring).
K_ZERO, K_SNAP, K_FILE, K_WRITE, K_ANOM = 0, 1, 2, 3, 4

#: Anomaly codes carried in ``content_val`` for K_ANOM labels.
ANOM_STRUCT = -1  # VMA has no structural counterpart in the snapshot
ANOM_LOST_WRITE = -2  # ledger says written, page is not a private writable copy
ANOM_CXL_ALIAS = -3  # CXL mapping does not alias the checkpoint frame for this vpn
ANOM_CACHE_MISMATCH = -4  # clean file page maps a frame the page cache disowns
ANOM_WRONG_CHUNK = -5  # dedup'd CXL frame holds a different chunk than the seal recorded


def _file_codes(path: str, page_offsets: np.ndarray) -> np.ndarray:
    """Stable int64 labels for file-backed bytes: crc32(path) ⊕ page offset.

    ``hash()`` is salted per process; crc32 is stable across runs and across
    the independently built pods being compared, which is what makes file
    labels comparable between mechanisms.
    """
    code = np.int64(zlib.crc32(path.encode()) & 0xFFFFFFFF)
    return (code << np.int64(21)) + page_offsets.astype(np.int64)


def _decode(kind: int, val: int, vma: "VmaView") -> str:
    if kind == K_ZERO:
        return "zero"
    if kind == K_SNAP:
        return f"snap:vpn={val}"
    if kind == K_FILE:
        return f"file:{vma.path}+{int(val) & ((1 << 21) - 1)}"
    if kind == K_WRITE:
        return f"write:op={val}"
    reasons = {
        ANOM_STRUCT: "no-snapshot-vma",
        ANOM_LOST_WRITE: "lost-write",
        ANOM_CXL_ALIAS: "cxl-alias",
        ANOM_CACHE_MISMATCH: "pagecache-mismatch",
        ANOM_WRONG_CHUNK: "wrong-chunk",
    }
    return f"anomaly:{reasons.get(int(val), f'frame={val}')}"


@dataclass
class VmaView:
    """One VMA's structure plus the resolved content label of every page."""

    start_vpn: int
    npages: int
    perms: int
    kind: str
    path: Optional[str]
    file_offset_pages: int
    label: str
    content_kind: np.ndarray
    content_val: np.ndarray

    def signature(self) -> tuple:
        """Structural identity: layout + protections, ignoring content."""
        return (
            self.start_vpn,
            self.npages,
            self.perms,
            self.kind,
            self.path,
            self.file_offset_pages,
        )

    def copy(self) -> "VmaView":
        return VmaView(
            self.start_vpn,
            self.npages,
            self.perms,
            self.kind,
            self.path,
            self.file_offset_pages,
            self.label,
            self.content_kind.copy(),
            self.content_val.copy(),
        )


@dataclass
class AddressSpaceView:
    """A task's full logical address space: structure + content labels."""

    comm: str
    vmas: List[VmaView] = field(default_factory=list)

    def copy(self) -> "AddressSpaceView":
        return AddressSpaceView(self.comm, [v.copy() for v in self.vmas])

    @property
    def total_pages(self) -> int:
        return sum(v.npages for v in self.vmas)

    def find(self, vpn: int) -> Optional[VmaView]:
        for view in self.vmas:
            if view.start_vpn <= vpn < view.start_vpn + view.npages:
                return view
        return None

    def overlay_writes(self, writes: Dict[int, int]) -> "AddressSpaceView":
        """A copy with ledger writes applied (the *expected* child view)."""
        out = self.copy()
        for vpn, op in writes.items():
            view = out.find(vpn)
            if view is None:
                raise ValueError(f"ledger write at vpn {vpn} outside every VMA")
            i = vpn - view.start_vpn
            view.content_kind[i] = K_WRITE
            view.content_val[i] = op
        return out


@dataclass(frozen=True)
class Divergence:
    """First-class record of one diverging page."""

    vpn: int
    region: str
    expected: str
    actual: str

    def describe(self) -> str:
        return f"vpn {self.vpn} [{self.region}]: expected {self.expected}, got {self.actual}"


@dataclass
class DivergenceReport:
    """Outcome of diffing two views; structural problems listed separately."""

    label: str = ""
    structural: List[str] = field(default_factory=list)
    pages: List[Divergence] = field(default_factory=list)
    diverging_pages: int = 0

    @property
    def clean(self) -> bool:
        return not self.structural and not self.pages

    def first(self) -> Optional[Divergence]:
        return self.pages[0] if self.pages else None

    def describe(self) -> str:
        if self.clean:
            return f"{self.label}: equivalent"
        lines = [f"{self.label}: DIVERGED ({self.diverging_pages} page(s))"]
        lines += [f"  structural: {s}" for s in self.structural]
        lines += [f"  {d.describe()}" for d in self.pages[:8]]
        if self.diverging_pages > len(self.pages):
            lines.append(f"  ... {self.diverging_pages - len(self.pages)} more")
        return "\n".join(lines)


def capture_snapshot(task) -> AddressSpaceView:
    """Snapshot a (non-checkpoint-backed) parent's logical address space.

    Per VMA: present anonymous pages are the parent's own bytes
    (``snap:<vpn>``); untouched anonymous pages are demand-zero; file pages
    are the file's bytes unless the parent holds a privately modified copy
    (hardware-writable — a private file page only gains WRITE through a CoW
    break, and keeps it after ``season()`` clears the DIRTY bits).
    """
    mm = task.mm
    if mm.ckpt_backing is not None:
        raise ValueError(
            "capture_snapshot needs a self-contained parent; "
            f"{task.comm} is checkpoint-backed"
        )
    view = AddressSpaceView(task.comm)
    for vma in mm.vmas:
        n = vma.npages
        ptes = mm.pagetable.gather_ptes(vma.start_vpn, n)
        present = (ptes & _P) != 0
        kind = np.empty(n, dtype=np.int64)
        val = np.zeros(n, dtype=np.int64)
        if vma.kind is VmaKind.ANON or vma.path is None:
            kind[:] = K_ZERO
            kind[present] = K_SNAP
            val[present] = vma.start_vpn + np.nonzero(present)[0]
        else:
            offs = vma.file_offset_pages + np.arange(n, dtype=np.int64)
            kind[:] = K_FILE
            val[:] = _file_codes(vma.path, offs)
            private = present & ((ptes & (_W | _D)) != 0)
            kind[private] = K_SNAP
            val[private] = vma.start_vpn + np.nonzero(private)[0]
        view.vmas.append(
            VmaView(
                vma.start_vpn,
                n,
                int(vma.perms),
                vma.kind.value,
                vma.path,
                vma.file_offset_pages,
                vma.label,
                kind,
                val,
            )
        )
    return view


def resolve_view(
    task,
    snapshot: AddressSpaceView,
    writes: Optional[Dict[int, int]] = None,
    *,
    verify_exclusive: bool = True,
) -> AddressSpaceView:
    """Re-derive a child's content labels from its actual MMU/pool state.

    ``writes`` is the scenario ledger (vpn -> op index) of stores performed
    *through this task* since the snapshot.  Ledger entries do not grant
    labels for free: a written page must be a present, hardware-writable,
    node-local mapping (and, with ``verify_exclusive``, an exclusively
    owned frame) or it resolves to a lost-write anomaly.
    """
    writes = writes or {}
    mm = task.mm
    node = task.node
    backing = mm.ckpt_backing
    snap_by_start = {v.start_vpn: v for v in snapshot.vmas}
    out = AddressSpaceView(task.comm)
    for vma in mm.vmas:
        n = vma.npages
        ptes = mm.pagetable.gather_ptes(vma.start_vpn, n)
        present = (ptes & _P) != 0
        on_cxl = present & ((ptes & _CXL) != 0)
        hw_writable = (ptes & _W) != 0
        frames = (ptes >> np.int64(PTE_FRAME_SHIFT)).astype(np.int64)
        kind = np.empty(n, dtype=np.int64)
        val = np.zeros(n, dtype=np.int64)
        view = VmaView(
            vma.start_vpn,
            n,
            int(vma.perms),
            vma.kind.value,
            vma.path,
            vma.file_offset_pages,
            vma.label,
            kind,
            val,
        )
        out.vmas.append(view)
        svma = snap_by_start.get(vma.start_vpn)
        if svma is None or svma.npages != n:
            # Structural mismatch; diff_views reports it from the signatures.
            kind[:] = K_ANOM
            val[:] = ANOM_STRUCT
            continue
        # Default: the page still holds what the parent snapshot held.
        kind[:] = svma.content_kind
        val[:] = svma.content_val
        is_file = vma.kind is not VmaKind.ANON and vma.path is not None

        if backing is not None:
            ck = backing.checkpoint.pagetable.gather_ptes(vma.start_vpn, n)
            ck_present = (ck & _P) != 0
            ck_frames = (ck >> np.int64(PTE_FRAME_SHIFT)).astype(np.int64)
        else:
            ck_present = np.zeros(n, dtype=bool)
            ck_frames = None

        # Non-present pages: checkpoint-covered ones are lazily the parent's
        # (inherited); the rest resolve to the VMA's backing store.
        unbacked = ~present & ~ck_present
        if np.any(unbacked):
            if is_file:
                idx = np.nonzero(unbacked)[0]
                kind[unbacked] = K_FILE
                val[unbacked] = _file_codes(vma.path, vma.file_offset_pages + idx)
            else:
                kind[unbacked] = K_ZERO
                val[unbacked] = 0

        # CXL mappings must alias the checkpoint frame for the *same* vpn;
        # anything else is reading some other page's bytes.
        if np.any(on_cxl):
            if ck_frames is None:
                bad = on_cxl
            else:
                bad = on_cxl & ~(ck_present & (frames == ck_frames))
            kind[bad] = K_ANOM
            val[bad] = ANOM_CXL_ALIAS
            # Aliasing checks out for the rest: inherited label stands.

            # Content cross-check (repro.dedup): the vpn-aliasing check
            # above is blind to a seal that interned a page into the wrong
            # hash bucket — the checkpoint's own PTE maps the wrong frame,
            # and the child faithfully aliases it.  With a content-addressed
            # image, the chunk registered for the mapped frame must match
            # the code the seal recorded for this vpn.
            if backing is not None:
                bk = backing.checkpoint
                gather = getattr(bk, "gather_chunk_codes", None)
                expected_codes = (
                    gather(vma.start_vpn, n) if gather is not None else None
                )
                if expected_codes is not None:
                    index = getattr(
                        getattr(node, "fabric", None), "_chunk_index", None
                    )
                    if index is not None:
                        actual_codes = index.codes_for(frames)
                        wrong = (
                            on_cxl
                            & (expected_codes != 0)
                            & (actual_codes != 0)
                            & (expected_codes != actual_codes)
                        )
                        kind[wrong] = K_ANOM
                        val[wrong] = ANOM_WRONG_CHUNK


        # Clean local file pages must map the frame the page cache holds for
        # (path, pgoff) — that is the only way their bytes are the file's.
        # Checkpoint-covered vpns are exempt: a read-only local copy there is
        # a checkpoint copy-on-access (MoA/Mitosis) realizing the inherited
        # label, not a page-cache alias.
        if is_file:
            clean = present & ~on_cxl & ~hw_writable & ~ck_present
            if np.any(clean):
                idx = np.nonzero(clean)[0]
                offs = vma.file_offset_pages + idx
                lo = int(offs.min())
                hi = int(offs.max()) + 1
                cached, pc_frames = node.pagecache.peek_range(vma.path, lo, hi - lo)
                sel = offs - lo
                matches = cached[sel] & (pc_frames[sel] == frames[idx])
                # A dropped-then-unmapped cache entry is fine (the mapping's
                # reference keeps the bytes alive); a *different* cached
                # frame for the same offset is not.
                conflicted = cached[sel] & ~matches
                kind[idx] = K_FILE
                val[idx] = _file_codes(vma.path, offs)
                bad_idx = idx[conflicted]
                kind[bad_idx] = K_ANOM
                val[bad_idx] = ANOM_CACHE_MISMATCH

        # Ledger overlay, last: a recorded write only earns its label if the
        # page is really a private, hardware-writable, node-local copy.
        for vpn, op in writes.items():
            if not (vma.start_vpn <= vpn < vma.start_vpn + n):
                continue
            i = vpn - vma.start_vpn
            ok = bool(present[i]) and bool(hw_writable[i]) and not bool(on_cxl[i])
            if ok and verify_exclusive:
                ok = node.dram.refcount(int(frames[i])) == 1
            if ok:
                kind[i] = K_WRITE
                val[i] = op
            else:
                kind[i] = K_ANOM
                val[i] = ANOM_LOST_WRITE
    return out


def diff_views(
    expected: AddressSpaceView,
    actual: AddressSpaceView,
    *,
    label: str = "",
    limit: int = 16,
) -> DivergenceReport:
    """Structural + first-divergence page diff of two views."""
    report = DivergenceReport(label=label or f"{expected.comm} vs {actual.comm}")
    exp_by_sig = {v.signature(): v for v in expected.vmas}
    act_by_sig = {v.signature(): v for v in actual.vmas}
    for sig in exp_by_sig:
        if sig not in act_by_sig:
            report.structural.append(f"missing VMA {sig}")
    for sig in act_by_sig:
        if sig not in exp_by_sig:
            report.structural.append(f"unexpected VMA {sig}")
    for sig, evma in exp_by_sig.items():
        avma = act_by_sig.get(sig)
        if avma is None:
            continue
        neq = (evma.content_kind != avma.content_kind) | (
            evma.content_val != avma.content_val
        )
        hits = np.nonzero(neq)[0]
        if hits.size == 0:
            continue
        report.diverging_pages += int(hits.size)
        for i in hits[: max(0, limit - len(report.pages))]:
            vpn = evma.start_vpn + int(i)
            report.pages.append(
                Divergence(
                    vpn=vpn,
                    region=evma.label or evma.path or evma.kind,
                    expected=_decode(int(evma.content_kind[i]), int(evma.content_val[i]), evma),
                    actual=_decode(int(avma.content_kind[i]), int(avma.content_val[i]), avma),
                )
            )
    return report


def capture_frames(task) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Per-VMA (present mask, frames) — raw material for pristineness checks."""
    out: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for vma in task.mm.vmas:
        ptes = task.mm.pagetable.gather_ptes(vma.start_vpn, vma.npages)
        present = (ptes & _P) != 0
        frames = (ptes >> np.int64(PTE_FRAME_SHIFT)).astype(np.int64)
        frames[~present] = -1
        out[vma.start_vpn] = (present, frames)
    return out


class DifferentialOracle:
    """Snapshot a parent once; verify any number of children against it.

    The oracle's contract, per the paper: *any* mechanism's fresh child
    resolves to exactly the parent snapshot, a child that replayed a write
    ledger resolves to snapshot ⊕ ledger, and the parent itself stays
    untouched by everything its children do.
    """

    def __init__(self, parent_task, *, label: str = "") -> None:
        self.label = label or parent_task.comm
        self.parent_task = parent_task
        self.snapshot = capture_snapshot(parent_task)
        self._parent_frames = capture_frames(parent_task)

    # -- children ----------------------------------------------------------

    def verify_child(
        self,
        task,
        writes: Optional[Dict[int, int]] = None,
        *,
        label: str = "child",
        raise_on_divergence: bool = True,
    ) -> DivergenceReport:
        """Diff one child against snapshot ⊕ ledger."""
        writes = writes or {}
        expected = (
            self.snapshot.overlay_writes(writes) if writes else self.snapshot
        )
        actual = resolve_view(task, self.snapshot, writes)
        report = diff_views(expected, actual, label=f"{self.label}/{label}")
        self._account(report, raise_on_divergence)
        return report

    def compare_children(
        self,
        task_a,
        task_b,
        writes: Optional[Dict[int, int]] = None,
        *,
        label: str = "cross-mechanism",
        raise_on_divergence: bool = True,
    ) -> DivergenceReport:
        """Diff two children (different mechanisms, same ledger) directly."""
        view_a = resolve_view(task_a, self.snapshot, writes)
        view_b = resolve_view(task_b, self.snapshot, writes)
        report = diff_views(view_a, view_b, label=f"{self.label}/{label}")
        self._account(report, raise_on_divergence)
        return report

    # -- the parent --------------------------------------------------------

    def verify_parent_pristine(
        self,
        written: Iterable[int] = (),
        *,
        raise_on_divergence: bool = True,
    ) -> DivergenceReport:
        """Children must never mutate the parent: same frames, same layout,
        except at vpns the parent itself wrote since the snapshot."""
        written_set = set(written)
        report = DivergenceReport(label=f"{self.label}/parent-pristine")
        now = capture_frames(self.parent_task)
        for start, (present0, frames0) in self._parent_frames.items():
            cur = now.get(start)
            if cur is None or cur[0].size != present0.size:
                report.structural.append(f"parent VMA at vpn {start} changed shape")
                continue
            present1, frames1 = cur
            changed = (present0 != present1) | (frames0 != frames1)
            hits = np.nonzero(changed)[0]
            for i in hits:
                vpn = start + int(i)
                if vpn in written_set:
                    continue
                report.diverging_pages += 1
                if len(report.pages) < 16:
                    report.pages.append(
                        Divergence(
                            vpn=vpn,
                            region=f"vma@{start}",
                            expected=f"frame={int(frames0[i])}",
                            actual=f"frame={int(frames1[i])}",
                        )
                    )
        for start in now:
            if start not in self._parent_frames:
                report.structural.append(f"parent grew a VMA at vpn {start}")
        self._account(report, raise_on_divergence)
        return report

    def _account(self, report: DivergenceReport, raise_on_divergence: bool) -> None:
        if CHECK.enabled:
            CHECK.stats.oracle_runs += 1
        if report.clean:
            return
        if CHECK.enabled:
            CHECK.stats.divergences += report.diverging_pages + len(report.structural)
            CHECK.stats.failures.append(report.describe())
        if raise_on_divergence:
            raise CheckFailure(report.describe())


__all__ = [
    "AddressSpaceView",
    "DifferentialOracle",
    "Divergence",
    "DivergenceReport",
    "VmaView",
    "capture_frames",
    "capture_snapshot",
    "diff_views",
    "resolve_view",
    "K_ZERO",
    "K_SNAP",
    "K_FILE",
    "K_WRITE",
    "K_ANOM",
]
