"""Seed-reproducible scenario fuzzer for the rfork mechanisms.

Generates a randomized but fully deterministic workload — a synthetic
parent address space plus an interleaving of fork / write / read / migrate
/ crash / exit operations — and drives it through **all three checkpoint
mechanisms in lockstep**, one independent pod per mechanism.  After every
operation the differential oracle re-verifies the touched tasks (child
views must equal snapshot ⊕ write-ledger, and must match each other across
mechanisms page-for-page) and the invariant checker sweeps the pods; clock
barriers and crashes additionally run the full frame-leak audit.

Two front ends share the generator:

* :func:`generate_scenario` — pure ``seed -> Scenario``; the CLI
  (``python -m repro check --seed N --steps M``) replays any failure
  exactly from its seed.
* :func:`scenario_strategy` — a Hypothesis strategy over the same space,
  used by the property tests so shrinking reduces a failing interleaving
  to a minimal one.

Operation semantics (per the paper's model):

* ``write``/``read`` — a child touches a window of one segment.  Writes
  CoW checkpoint-resident pages local and enter the scenario ledger.
* ``migrate`` — a bulk read of a whole segment: under migrate-on-access
  policies (and Mitosis) this *is* page migration; under migrate-on-write
  it maps the CXL replicas.  Either way the resolved view must not change.
* ``parent_write`` — the parent mutates itself *after* the checkpoint;
  no child may observe it (checkpoint immutability, §4.2).
* ``spawn`` — every mechanism restores one more child from the same
  checkpoint; its fresh view must equal the original snapshot exactly.
* ``exit`` — a child exits on every pod; leaf refcounts must drop cleanly.
* ``crash`` — a bystander node (never the source or target) fails;
  nothing any surviving task can see may change.
* ``barrier`` — full invariant sweep + frame-leak audit on every pod.

Localfork is deliberately not part of the lockstep set: its children clone
the *live* parent, so after a ``parent_write`` they legitimately differ
from checkpoint-based children.  The oracle unit tests cover it separately.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.check import CHECK, CheckFailure
from repro.check.invariants import check_pod
from repro.check.oracle import DifferentialOracle, diff_views, resolve_view
from repro.exceptions import PoisonError
from repro.experiments.common import Pod, make_pod
from repro.rfork.registry import get_mechanism
from repro.sim.units import GIB

DEFAULT_MECHANISMS = ("cxlfork", "criu-cxl", "mitosis-cxl")


@dataclass(frozen=True)
class Segment:
    """One VMA of the synthetic parent."""

    kind: str  # "anon" | "file" | "file_rw"
    npages: int
    populate: bool
    path: Optional[str] = None


@dataclass(frozen=True)
class Op:
    """One fuzzed operation (fields unused by a kind are zero)."""

    kind: str
    child: int = 0
    seg: int = 0
    offset: int = 0
    length: int = 0


@dataclass(frozen=True)
class Scenario:
    """A fully deterministic workload: replayable from its seed alone."""

    seed: int
    policy: str  # cxlfork tiering policy: mow | moa | hybrid
    segments: Tuple[Segment, ...]
    prewrites: Tuple[Tuple[int, int, int], ...]  # (seg, offset, length)
    ops: Tuple[Op, ...]


def generate_scenario(seed: int, steps: int = 60) -> Scenario:
    """Deterministically derive a scenario from ``seed``."""
    rng = np.random.default_rng(seed)
    segments: List[Segment] = []
    for _ in range(int(rng.integers(2, 5))):
        segments.append(
            Segment("anon", int(rng.integers(16, 97)), bool(rng.random() < 0.6))
        )
    for i in range(int(rng.integers(1, 3))):
        segments.append(
            Segment(
                "file",
                int(rng.integers(16, 65)),
                bool(rng.random() < 0.8),
                path=f"/lib/fz-{seed}-{i}.so",
            )
        )
    for i in range(int(rng.integers(0, 2))):
        segments.append(
            Segment(
                "file_rw",
                int(rng.integers(16, 65)),
                True,
                path=f"/data/fz-{seed}-{i}.bin",
            )
        )

    def window(seg: Segment) -> Tuple[int, int]:
        length = int(rng.integers(1, seg.npages + 1))
        offset = int(rng.integers(0, seg.npages - length + 1))
        return offset, length

    prewrites: List[Tuple[int, int, int]] = []
    for si, seg in enumerate(segments):
        writable = seg.kind in ("anon", "file_rw")
        if writable and rng.random() < 0.7:
            offset, length = window(seg)
            prewrites.append((si, offset, length))

    writable_segs = [
        i for i, s in enumerate(segments) if s.kind in ("anon", "file_rw")
    ]
    ops: List[Op] = []
    alive = [0]  # child 0 is always spawned by the runner before the ops
    next_child = 1
    crashed = False
    kinds = ["write", "read", "migrate", "parent_write", "spawn", "exit",
             "crash", "barrier"]
    weights = np.array([0.30, 0.22, 0.10, 0.10, 0.08, 0.06, 0.04, 0.10])
    weights /= weights.sum()
    for _ in range(steps):
        kind = str(rng.choice(kinds, p=weights))
        if kind == "exit" and len(alive) < 2:
            kind = "read"
        if kind == "crash" and crashed:
            kind = "barrier"
        if kind in ("write", "parent_write"):
            seg = int(rng.choice(writable_segs))
            offset, length = window(segments[seg])
            child = int(rng.choice(alive)) if kind == "write" else 0
            ops.append(Op(kind, child=child, seg=seg, offset=offset, length=length))
        elif kind == "read":
            seg = int(rng.integers(0, len(segments)))
            offset, length = window(segments[seg])
            ops.append(Op(kind, child=int(rng.choice(alive)), seg=seg,
                          offset=offset, length=length))
        elif kind == "migrate":
            seg = int(rng.integers(0, len(segments)))
            ops.append(Op(kind, child=int(rng.choice(alive)), seg=seg,
                          offset=0, length=segments[seg].npages))
        elif kind == "spawn":
            ops.append(Op(kind, child=next_child))
            alive.append(next_child)
            next_child += 1
        elif kind == "exit":
            victim = int(rng.choice(alive))
            alive.remove(victim)
            ops.append(Op(kind, child=victim))
        elif kind == "crash":
            crashed = True
            ops.append(Op(kind))
        else:
            ops.append(Op("barrier"))
    policy = str(rng.choice(["mow", "moa", "hybrid"]))
    return Scenario(
        seed=seed,
        policy=policy,
        segments=tuple(segments),
        prewrites=tuple(prewrites),
        ops=tuple(ops),
    )


def scenario_strategy(max_steps: int = 40):
    """Hypothesis strategy over the scenario space (imported lazily so the
    CLI works without hypothesis installed)."""
    import hypothesis.strategies as st

    return st.builds(
        lambda seed, steps: generate_scenario(int(seed), steps=int(steps)),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=5, max_value=max_steps),
    )


def _make_policy(name: str):
    if name == "moa":
        from repro.tiering.moa import MigrateOnAccess

        return MigrateOnAccess()
    if name == "hybrid":
        from repro.tiering.hybrid import HybridTiering

        return HybridTiering()
    from repro.tiering.mow import MigrateOnWrite

    return MigrateOnWrite()


class _MechanismRun:
    """One mechanism's pod, parent, checkpoint, and children."""

    def __init__(self, mech_name: str, scenario: Scenario) -> None:
        self.name = mech_name
        self.scenario = scenario
        self.pod: Pod = make_pod(node_count=3, dram_bytes=1 * GIB, cxl_bytes=1 * GIB)
        kernel = self.pod.source.kernel
        self.parent = kernel.spawn_task(f"fz-parent-{scenario.seed}")
        self.seg_starts: List[int] = []
        for seg in scenario.segments:
            if seg.kind == "anon":
                vma = kernel.map_anon_region(
                    self.parent, seg.npages, label="fz-anon", populate=seg.populate
                )
            else:
                vma = kernel.map_file_region(
                    self.parent,
                    seg.path,
                    seg.npages,
                    writable=seg.kind == "file_rw",
                    label="fz-file",
                    populate=seg.populate,
                )
            self.seg_starts.append(vma.start_vpn)
        for seg_i, offset, length in scenario.prewrites:
            kernel.access_range(
                self.parent, self.seg_starts[seg_i] + offset, length, write=True
            )
        # A bystander task on the third node gives crashes something to kill.
        bystander_kernel = self.pod.nodes[2].kernel
        self.bystander = bystander_kernel.spawn_task("fz-bystander")
        bystander_kernel.map_anon_region(self.bystander, 32, label="fz-decoy")

        self.oracle = DifferentialOracle(self.parent, label=mech_name)
        self.mechanism = get_mechanism(
            mech_name, fabric=self.pod.fabric, cxlfs=self.pod.cxlfs
        )
        self.policy = (
            _make_policy(scenario.policy) if mech_name == "cxlfork" else None
        )
        self.checkpoint, _ = self.mechanism.checkpoint(self.parent)
        self.children: Dict[int, object] = {}

    @property
    def live_checkpoints(self) -> list:
        return [self.checkpoint]

    def spawn(self, index: int) -> None:
        result = self.mechanism.restore(
            self.checkpoint, self.pod.target, policy=self.policy
        )
        self.children[index] = result.task

    def exit_child(self, index: int) -> None:
        task = self.children.pop(index)
        self.pod.target.kernel.exit_task(task)

    def crash_bystander(self) -> None:
        self.pod.nodes[2].fail()

    def check_invariants(self, *, audit: bool) -> None:
        check_pod(
            self.pod.fabric,
            self.pod.nodes,
            cxlfs=self.pod.cxlfs,
            checkpoints=self.live_checkpoints,
            audit=audit,
            raise_on_violation=True,
        )


@dataclass
class ScenarioResult:
    """Outcome of one lockstep run."""

    scenario: Scenario
    mechanisms: Tuple[str, ...]
    ops_applied: int = 0
    steps: int = 0  # per-mechanism operation applications
    oracle_runs: int = 0
    failure: Optional[str] = None
    ledgers: Dict[int, Dict[int, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failure is None


class ScenarioRunner:
    """Drives one scenario through every mechanism in lockstep."""

    def __init__(
        self,
        scenario: Scenario,
        mechanisms: Tuple[str, ...] = DEFAULT_MECHANISMS,
    ) -> None:
        self.scenario = scenario
        self.mechanisms = tuple(mechanisms)
        self.runs = [_MechanismRun(name, scenario) for name in self.mechanisms]
        starts = self.runs[0].seg_starts
        for run in self.runs[1:]:
            if run.seg_starts != starts:
                raise CheckFailure(
                    f"non-deterministic layout: {run.name} placed segments at "
                    f"{run.seg_starts}, {self.runs[0].name} at {starts}"
                )
        self.seg_starts = starts
        #: Per-child write ledger (vpn -> op index), mechanism-independent.
        self.ledgers: Dict[int, Dict[int, int]] = {0: {}}
        self.parent_ledger: Dict[int, int] = {}
        self.result = ScenarioResult(scenario, self.mechanisms)

    # -- verification helpers ----------------------------------------------

    def _verify_child(self, index: int) -> None:
        ledger = self.ledgers[index]
        first = None
        for run in self.runs:
            task = run.children[index]
            run.oracle.verify_child(task, ledger, label=f"child{index}")
            self.result.oracle_runs += 1
            if first is None:
                first = (run, task)
            else:
                first[0].oracle.compare_children(
                    first[1], task, ledger,
                    label=f"child{index}:{first[0].name}-vs-{run.name}",
                )
                self.result.oracle_runs += 1

    def _verify_parent(self) -> None:
        for run in self.runs:
            run.oracle.verify_parent_pristine(self.parent_ledger)
            expected = run.oracle.snapshot.overlay_writes(self.parent_ledger)
            actual = resolve_view(run.parent, run.oracle.snapshot, self.parent_ledger)
            report = diff_views(expected, actual, label=f"{run.name}/parent")
            if not report.clean:
                raise CheckFailure(report.describe())
            self.result.oracle_runs += 1

    def _verify_all(self) -> None:
        self._verify_parent()
        for index in self.ledgers:
            if index in self.runs[0].children:
                self._verify_child(index)

    # -- op application -----------------------------------------------------

    def _apply(self, op_index: int, op: Op) -> None:
        start = self.seg_starts[op.seg] + op.offset if op.kind in (
            "write", "read", "migrate", "parent_write"
        ) else 0
        if op.kind in ("write", "read", "migrate"):
            if op.child not in self.ledgers:  # exited; treat as barrier
                op = Op("barrier")
            else:
                write = op.kind == "write"
                for run in self.runs:
                    run.pod.target.kernel.access_range(
                        run.children[op.child], start, op.length, write=write
                    )
                if write:
                    ledger = self.ledgers[op.child]
                    for vpn in range(start, start + op.length):
                        ledger[vpn] = op_index
                self._verify_child(op.child)
                return
        if op.kind == "parent_write":
            for run in self.runs:
                run.pod.source.kernel.access_range(
                    run.parent, start, op.length, write=True
                )
            for vpn in range(start, start + op.length):
                self.parent_ledger[vpn] = op_index
            self._verify_parent()
            # Checkpoint immutability: no child may have observed the write.
            for index in list(self.ledgers):
                if index in self.runs[0].children:
                    self._verify_child(index)
            return
        if op.kind == "spawn":
            for run in self.runs:
                run.spawn(op.child)
            self.ledgers[op.child] = {}
            self._verify_child(op.child)
            return
        if op.kind == "exit":
            for run in self.runs:
                run.exit_child(op.child)
            del self.ledgers[op.child]
            for run in self.runs:
                run.check_invariants(audit=False)
            return
        if op.kind == "crash":
            for run in self.runs:
                run.crash_bystander()
                run.check_invariants(audit=True)
            self._verify_all()
            return
        # barrier
        for run in self.runs:
            run.check_invariants(audit=True)
        self._verify_all()

    def run(self) -> ScenarioResult:
        for run in self.runs:
            run.spawn(0)
        self._verify_child(0)
        for run in self.runs:
            run.check_invariants(audit=True)
        for op_index, op in enumerate(self.scenario.ops):
            self._apply(op_index, op)
            self.result.ops_applied += 1
            self.result.steps += len(self.runs)
        # Final barrier: everything verified, everything audited.
        self._verify_all()
        for run in self.runs:
            run.check_invariants(audit=True)
        self.result.ledgers = self.ledgers
        return self.result


def run_scenario(
    seed: int,
    steps: int = 60,
    mechanisms: Tuple[str, ...] = DEFAULT_MECHANISMS,
) -> ScenarioResult:
    """Generate + run one scenario; raises :class:`CheckFailure` on any
    divergence or invariant violation."""
    scenario = generate_scenario(seed, steps=steps)
    return ScenarioRunner(scenario, mechanisms).run()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="Differential rfork fuzzer: oracle + invariants, every step.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base scenario seed")
    parser.add_argument("--steps", type=int, default=60,
                        help="operations per scenario (default 60)")
    parser.add_argument("--scenarios", type=int, default=1,
                        help="number of consecutive seeds to run")
    parser.add_argument("--mechanisms", default=",".join(DEFAULT_MECHANISMS),
                        help="comma-separated lockstep mechanism set")
    parser.add_argument("--list-mutations", action="store_true",
                        help="list known seeded mutations and exit")
    args = parser.parse_args(argv)
    if args.list_mutations:
        from repro.check import mutation

        for name, description in mutation.KNOWN.items():
            print(f"{name:<16} {description}")
        return 0

    mechanisms = tuple(m.strip() for m in args.mechanisms.split(",") if m.strip())
    CHECK.reset()
    CHECK.enable()
    status = 0
    total_steps = 0
    for i in range(args.scenarios):
        seed = args.seed + i
        try:
            result = run_scenario(seed, steps=args.steps, mechanisms=mechanisms)
        except CheckFailure as failure:
            print(f"seed {seed}: FAILED\n{failure}", file=sys.stderr)
            status = 1
            break
        except PoisonError as poison:
            # The RAS checksum detector firing is also a caught bug: the
            # flip-frame-byte mutation surfaces here, not as an oracle
            # divergence (the corrupt image is refused before it serves).
            print(f"seed {seed}: FAILED (poison detected)\n{poison}",
                  file=sys.stderr)
            status = 1
            break
        total_steps += result.steps
        print(
            f"seed {seed}: ok — {result.ops_applied} op(s) x "
            f"{len(mechanisms)} mechanism(s) = {result.steps} step(s), "
            f"{result.oracle_runs} oracle run(s)"
        )
    print(CHECK.summary())
    print(f"total fuzzer steps: {total_steps}")
    CHECK.disable()
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = [
    "DEFAULT_MECHANISMS",
    "Op",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "Segment",
    "generate_scenario",
    "run_scenario",
    "scenario_strategy",
    "main",
]
