"""Deliberate, env-var-gated bugs for testing the checkers themselves.

A checker that has never caught a bug is untested code.  This module gates
a small set of *seeded mutations* — deliberate single-bit bugs in the
production paths — behind the ``REPRO_CHECK_MUTATION`` environment
variable.  CI (and ``tests/test_check_mutation.py``) enables one, runs the
differential oracle, and asserts it fires; with the variable unset the
mutations compile to a dictionary miss and the hot paths are untouched.

Known mutations:

``drop-ckpt-cow``
    :meth:`repro.rfork.cxlfork.CxlFork.checkpoint` omits the COW bit from
    the checkpointed PTEs.  A restored child's write to a checkpoint-mapped
    page then silently no-ops (the page stays CXL-resident and read-only
    instead of CoW-ing local) — exactly the class of PTE-encoding bug the
    oracle exists to catch, and invisible to every latency metric.

``flip-frame-byte``
    :meth:`repro.rfork.cxlfork.CxlFork.checkpoint` corrupts one
    checkpointed data frame immediately *after* the checksum seal (the
    pool marks it poisoned).  Without the RAS checksum verification at
    restore the child would silently serve the corrupt byte; with it,
    the first restore raises :class:`repro.exceptions.PoisonError` —
    proving the detector actually fires.

``alias-wrong-chunk``
    The content-addressed seal (:mod:`repro.dedup`) maps a page whose
    content the chunk index already holds into the *wrong* hash bucket —
    some other chunk's frame — while recording the intended code.  The
    restored child then reads another page's bytes through a PTE that
    passes every structural check (the checkpoint's own page table maps
    the same wrong frame the child aliases).  Only the oracle's chunk-code
    cross-check (``anomaly:wrong-chunk``) catches it.  Needs dedup on and
    a second checkpoint (the first seal populates the index; the bug fires
    on hits).

``stale-restore-plan``
    :func:`repro.rfork.restoreplan.plan_for` serves a memoized restore
    plan whose invalidation epoch no longer matches (and
    ``verify_planned`` serves its cached clean verdict), as if the epoch
    contract were broken.  A restore after a poison event then succeeds
    against frames the plan remembers as verified; the child's first CoW
    read of a poisoned page must still raise through the non-plan-mediated
    ``verify_frames`` path — proving stale-plan bugs cannot reach user
    data undetected.

Enable with e.g. ``REPRO_CHECK_MUTATION=drop-ckpt-cow python -m repro check``.
"""

from __future__ import annotations

import os

ENV_VAR = "REPRO_CHECK_MUTATION"

#: Mutation name -> description, for ``python -m repro check --list-mutations``.
KNOWN = {
    "drop-ckpt-cow": "cxlfork checkpoint PTEs lose the COW bit (child writes no-op)",
    "flip-frame-byte": "one checkpointed frame corrupts post-seal "
    "(restore-time checksum must catch it)",
    "alias-wrong-chunk": "dedup seal maps a page to the wrong hash bucket "
    "(oracle chunk-code cross-check must catch it)",
    "stale-restore-plan": "restore serves a memoized plan across an epoch "
    "bump (fault-path checksums must still catch the poison)",
}


def active(name: str) -> bool:
    """True when mutation ``name`` is enabled via the environment.

    Read per call (not cached at import) so tests can monkeypatch the
    environment; the cost is one ``os.environ`` lookup on the checkpoint
    path, far below measurement noise.
    """
    value = os.environ.get(ENV_VAR)
    if not value:
        return False
    return name in value.split(",")


def any_active() -> bool:
    return bool(os.environ.get(ENV_VAR))


__all__ = ["ENV_VAR", "KNOWN", "active", "any_active"]
