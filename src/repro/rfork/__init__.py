"""Remote-fork mechanisms.

* :class:`CxlFork` — the paper's contribution: as-is checkpoint to CXL,
  pointer rebase, leaf attachment, CoW with tiering (§3-§4).
* :class:`CriuCxl` — state of practice: full serialization to files on an
  in-CXL-memory file system, full-copy restore (§2.3.1, §6.2).
* :class:`MitosisCxl` — state of the art: local shadow checkpoint,
  serialized OS state, lazy per-page remote copies (§2.3.2, §6.2).
* :class:`LocalFork` / :class:`ColdStart` — the reference baselines.

All mechanisms restore through the memoized restore-plan cache
(:mod:`repro.rfork.restoreplan`, runtime-flagged via ``RESTORE_PLAN``):
repeated cold starts of one checkpoint pay O(delta) host work instead of
re-scanning the image, with epoch-keyed invalidation on poison/repair,
dedup repoint, and re-seal.
"""

from repro.rfork.base import (
    CheckpointMetrics,
    RemoteForkMechanism,
    RestoreMetrics,
    RestoreResult,
)
from repro.rfork.coldstart import ColdStart
from repro.rfork.criu import CriuCheckpoint, CriuCxl
from repro.rfork.cxlfork import CxlFork, CxlForkCheckpoint
from repro.rfork.localfork import LocalFork
from repro.rfork.mitosis import MitosisCheckpoint, MitosisCxl, MitosisPolicy
from repro.rfork.registry import MECHANISMS, get_mechanism
from repro.rfork.restoreplan import (
    RESTORE_PLAN,
    RestorePlan,
    RestorePlanRuntime,
    drop_plan,
    plan_for,
)

__all__ = [
    "RESTORE_PLAN",
    "RestorePlan",
    "RestorePlanRuntime",
    "drop_plan",
    "plan_for",
    "CheckpointMetrics",
    "RemoteForkMechanism",
    "RestoreMetrics",
    "RestoreResult",
    "ColdStart",
    "CriuCheckpoint",
    "CriuCxl",
    "CxlFork",
    "CxlForkCheckpoint",
    "LocalFork",
    "MitosisCheckpoint",
    "MitosisCxl",
    "MitosisPolicy",
    "MECHANISMS",
    "get_mechanism",
]
