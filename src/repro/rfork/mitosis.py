"""Mitosis-CXL: the state-of-the-art baseline (§2.3.2, §6.2).

Checkpoint: make an immutable *shadow copy* of the parent's memory in the
parent node's local DRAM and serialize the OS state (task, VMAs, pagemaps)
into a buffer.  The checkpoint stays coupled to the parent node — the
parent cannot exit while descendants live, and every restore pulls from it.

Restore: ship the serialized OS state over CXL, deserialize it, and eagerly
reconstruct the process's VMA tree and page-table skeleton on the target
node.  No data is copied up front; as the child runs, every first touch
takes a "remote" fault that copies the page from the parent's shadow over
the CXL fabric into local memory (the §6.2 emulation of Mitosis' one-sided
RDMA reads).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Any, Optional

import numpy as np

from repro.os.kernel import CheckpointBacking
from repro.os.mm.faults import FaultKind
from repro.os.mm.pagetable import PTES_PER_LEAF, PageTable, PteLeaf
from repro.os.mm.pte import PTE_FRAME_SHIFT, PteFlags
from repro.os.node import ComputeNode
from repro.os.proc.namespaces import NamespaceSet
from repro.os.proc.task import Task, TaskState
from repro.rfork.restoreplan import RestorePlan, drop_plan, plan_for
from repro.rfork.base import (
    FD_REOPEN_NS,
    MMAP_SYSCALL_NS,
    NS_RESTORE_NS,
    PROC_CREATE_NS,
    CheckpointMetrics,
    RemoteForkMechanism,
    RestoreMetrics,
    RestoreResult,
)
from repro.serial.codec import Codec
from repro.serial.records import (
    TaskRecord,
    VmaRecord,
    pagemap_records,
    task_to_records,
    vma_records,
)
from repro.sim.units import PAGE_SIZE
from repro.tiering.policy import TieringPolicy

#: Rebuilding the page-table skeleton for one present page on restore
#: (Mitosis installs "remote-marked" entries eagerly; §7.1 measures this
#: OS-state transfer+rebuild at up to 15 ms for Bert's ~160k pages).
PT_REBUILD_PER_PAGE_NS = 80.0


class MitosisPolicy(TieringPolicy):
    """Every touched page is copied from the parent's shadow over CXL."""

    name = "mitosis"
    attach_leaves = False
    copy_fault_kind = FaultKind.MITOSIS_REMOTE
    prefetch_dirty = False

    def select_copy_on_read(self, a_bits: np.ndarray, hot_bits: np.ndarray) -> np.ndarray:
        return np.ones_like(a_bits, dtype=bool)


class MitosisCheckpoint:
    """A shadow process image held in the *parent node's* local memory."""

    def __init__(self, comm: str, parent_node: ComputeNode) -> None:
        self.comm = comm
        self.parent_node = parent_node
        self.pagetable = PageTable()  # shadow mappings (parent-local frames)
        self.shadow_frames = np.empty(0, dtype=np.int64)
        self.task_record: Optional[TaskRecord] = None
        self.vma_records: list[VmaRecord] = []
        self.os_state_bytes = 0
        self.present_pages = 0
        self._deleted = False

    @property
    def local_shadow_bytes(self) -> int:
        return self.present_pages * PAGE_SIZE

    @property
    def cxl_bytes(self) -> int:
        return 0  # nothing persists on the CXL device

    def delete(self) -> None:
        if self._deleted:
            return
        self._deleted = True
        drop_plan(self)
        if self.shadow_frames.size:
            self.parent_node.dram.put(self.shadow_frames)


def build_restore_plan(checkpoint: MitosisCheckpoint) -> RestorePlan:
    """Memoize the OS-state restore inputs (Mitosis ships metadata only).

    The shadow pages themselves are never touched at restore — children
    pull them on fault — so the plan holds just the deserialization record
    count and the rebuilt immutable Vma list.  Mitosis images are not
    CXL-resident and carry no RAS seal, so ``plan.frames`` stays None.
    """
    plan = RestorePlan()
    plan.n_meta_records = (
        2 + len(checkpoint.vma_records) + checkpoint.present_pages // 64
    )
    plan.vma_specs = [
        r.rebuild(file_registered=True) for r in checkpoint.vma_records
    ]
    return plan


class MitosisCxl(RemoteForkMechanism):
    """Mitosis remote fork with RDMA verbs replaced by CXL copies."""

    name = "mitosis-cxl"
    supports_ghost_containers = True

    def __init__(self, *, codec: Optional[Codec] = None) -> None:
        self.codec = codec or Codec()

    # -- checkpoint --------------------------------------------------------------

    def checkpoint(self, task: Task) -> tuple[MitosisCheckpoint, CheckpointMetrics]:
        node = task.node
        latency = node.fabric.latency
        metrics = CheckpointMetrics()
        task.freeze()
        ckpt: Optional[MitosisCheckpoint] = None
        frame_chunks: list[np.ndarray] = []
        try:
            ckpt = MitosisCheckpoint(task.comm, node)
            total_present = 0
            preserve = np.int64(
                int(PteFlags.ACCESSED) | int(PteFlags.DIRTY) | int(PteFlags.HOT)
            )
            base = np.int64(int(PteFlags.PRESENT) | int(PteFlags.USER))
            for leaf_index, leaf in task.mm.pagetable.leaves():
                present = (leaf.ptes & np.int64(int(PteFlags.PRESENT))) != 0
                count = int(np.count_nonzero(present))
                shadow_ptes = np.zeros(PTES_PER_LEAF, dtype=np.int64)
                if count:
                    shadow = node.dram.alloc_many(count)
                    frame_chunks.append(shadow)
                    kept = leaf.ptes[present] & preserve
                    shadow_ptes[present] = (
                        (shadow << np.int64(PTE_FRAME_SHIFT)) | base | kept
                    )
                    total_present += count
                ckpt.pagetable.install_leaf(leaf_index, PteLeaf(shadow_ptes))
            ckpt.present_pages = total_present
            if frame_chunks:
                ckpt.shadow_frames = np.concatenate(frame_chunks)
            metrics.note(
                "shadow_copy",
                latency.copy_ns(total_present * PAGE_SIZE, src_cxl=False, dst_cxl=False),
            )
            metrics.local_shadow_bytes = ckpt.local_shadow_bytes

            # Serialize the OS state (metadata only — no page contents).
            ckpt.task_record = task_to_records(task)
            ckpt.vma_records = vma_records(task)
            pagemaps = pagemap_records(task)
            wire = {
                "task": ckpt.task_record.to_wire(),
                "vmas": [r.to_wire() for r in ckpt.vma_records],
                "pagemaps": [r.to_wire() for r in pagemaps],
            }
            blob, encode_ns = self.codec.encode_with_cost(
                wire, nrecords=2 + len(ckpt.vma_records) + len(pagemaps)
            )
            ckpt.os_state_bytes = len(blob)
            metrics.note("serialize_os_state", encode_ns)
            metrics.serialized_bytes = len(blob)
            # Part of the operation: crash alarms in the window fire here.
            node.clock.advance(metrics.latency_ns)
        except BaseException:
            # Release partial shadow frames.  If the parent node crashed,
            # its quarantined DRAM pool absorbs the puts as no-ops (the
            # shadow died with the node — §3.1's point-of-failure coupling).
            if frame_chunks:
                node.dram.put(np.concatenate(frame_chunks))
            if ckpt is not None:
                ckpt.shadow_frames = np.empty(0, dtype=np.int64)
                ckpt._deleted = True
            raise
        finally:
            task.thaw()
        node.log.emit(node.clock.now, "mitosis_checkpoint", comm=task.comm,
                      pages=ckpt.present_pages)
        return ckpt, metrics

    # -- restore ------------------------------------------------------------------

    def restore(
        self,
        checkpoint: MitosisCheckpoint,
        node: ComputeNode,
        *,
        container: Optional[Any] = None,
        policy: Optional[Any] = None,
    ) -> RestoreResult:
        if policy is None:
            policy = MitosisPolicy()
        if checkpoint.parent_node.failed:
            from repro.os.kernel import NodeFailedError

            raise NodeFailedError(
                f"Mitosis checkpoint of {checkpoint.comm!r} was coupled to "
                f"{checkpoint.parent_node.name!r}, which has failed (§3.1: "
                "the parent node is a point of failure)"
            )
        kernel = node.kernel
        metrics = RestoreMetrics()
        plan = plan_for(checkpoint, node.fabric, build_restore_plan)

        metrics.note("process_create", PROC_CREATE_NS)
        task = kernel.spawn_task(checkpoint.comm, container=container)
        try:
            return self._restore_into(task, checkpoint, node, policy, metrics, plan)
        except BaseException:
            # Failed restores must not leak frames; a mid-restore node
            # crash already tore the task down via node.fail().
            if task.state is not TaskState.DEAD:
                kernel.exit_task(task)
            raise

    def _restore_into(
        self, task, checkpoint, node, policy, metrics, plan=None
    ) -> RestoreResult:
        kernel = node.kernel
        latency = node.fabric.latency

        # Ship + deserialize the OS state over the CXL fabric.
        nbytes = checkpoint.os_state_bytes
        metrics.note(
            "os_state_transfer",
            latency.copy_ns(nbytes, src_cxl=False, dst_cxl=True)
            + latency.copy_ns(nbytes, src_cxl=True, dst_cxl=False),
        )
        if plan is not None:
            n_records = plan.n_meta_records
        else:
            n_records = (
                2 + len(checkpoint.vma_records) + checkpoint.present_pages // 64
            )
        metrics.note(
            "os_state_deserialize", self.codec.costs.decode_ns(nbytes, n_records)
        )

        record = checkpoint.task_record
        task.regs = record.regs.restore_into()
        for fd_record in record.fds:
            entry = fd_record.reopen()
            inode = node.rootfs.ensure(entry.path)
            task.fdtable.install(dc_replace(entry, inode=inode.ino))
        metrics.note("fd_reopen", FD_REOPEN_NS * len(record.fds))
        task.namespaces = NamespaceSet.restore_into(
            {"pid": record.namespaces.pid_ns, "mnt": record.namespaces.mnt_ns},
            task.namespaces,
        )
        metrics.note("ns_restore", NS_RESTORE_NS)

        # Rebuild the VMA tree and the remote-marked page-table skeleton.
        # Rebuilt Vma objects are immutable, so the plan shares one list.
        if plan is not None:
            vmas = plan.vma_specs
        else:
            vmas = [r.rebuild(file_registered=True) for r in checkpoint.vma_records]
        for vma in vmas:
            if vma.is_file_backed():
                node.rootfs.ensure(vma.path, size_bytes=vma.npages * PAGE_SIZE)
            task.mm.vmas.insert(vma)
            task.mm.note_range_used(vma.start_vpn, vma.npages)
        metrics.note("vma_rebuild", MMAP_SYSCALL_NS * len(checkpoint.vma_records))
        metrics.note(
            "pt_rebuild", PT_REBUILD_PER_PAGE_NS * checkpoint.present_pages
        )

        # Execution pulls pages lazily from the parent's shadow over CXL.
        task.mm.ckpt_backing = CheckpointBacking(
            checkpoint=checkpoint, policy=policy, holds_frame_refs=False
        )

        node.clock.advance(metrics.latency_ns)
        node.log.emit(node.clock.now, "mitosis_restore", comm=checkpoint.comm,
                      node=node.name)
        return RestoreResult(task=task, metrics=metrics)


__all__ = ["MitosisCxl", "MitosisCheckpoint", "MitosisPolicy", "build_restore_plan"]
