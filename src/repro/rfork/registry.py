"""Mechanism registry: build any remote-fork mechanism by name."""

from __future__ import annotations

from typing import Optional

from repro.cxl.fabric import CxlFabric
from repro.os.fs.cxlfs import CxlFileSystem
from repro.rfork.coldstart import Builder, ColdStart
from repro.rfork.criu import CriuCxl
from repro.rfork.cxlfork import CxlFork
from repro.rfork.localfork import LocalFork
from repro.rfork.mitosis import MitosisCxl

#: The remote-fork mechanisms evaluated in Fig. 7 (plus the baselines and
#: the fault-tolerant wrapper from the resilience extension).
MECHANISMS = ("cxlfork", "criu-cxl", "mitosis-cxl", "localfork", "cold", "resilient")


def get_mechanism(
    name: str,
    *,
    fabric: Optional[CxlFabric] = None,
    cxlfs: Optional[CxlFileSystem] = None,
    builder: Optional[Builder] = None,
):
    """Instantiate a mechanism by name.

    CRIU-CXL needs the shared in-CXL file system (created on demand from
    ``fabric`` if not supplied); cold start needs a function ``builder``.
    """
    if name == "cxlfork":
        return CxlFork()
    if name == "criu-cxl":
        if cxlfs is None:
            if fabric is None:
                raise ValueError("criu-cxl needs cxlfs or fabric")
            cxlfs = CxlFileSystem(fabric)
        return CriuCxl(cxlfs)
    if name == "mitosis-cxl":
        return MitosisCxl()
    if name == "localfork":
        return LocalFork()
    if name == "cold":
        if builder is None:
            raise ValueError("cold start needs a function builder")
        return ColdStart(builder)
    if name == "resilient":
        from repro.rfork.resilient import ResilientFork

        if fabric is None:
            raise ValueError("resilient fork needs the fabric")
        if cxlfs is None:
            cxlfs = CxlFileSystem(fabric)
        return ResilientFork(fabric=fabric, cxlfs=cxlfs)
    raise ValueError(f"unknown mechanism {name!r}; choose from {MECHANISMS}")


__all__ = ["MECHANISMS", "get_mechanism"]
