"""Memoized restore plans: repeated cold starts pay O(delta), not O(image).

CXLfork's restore is near constant *simulated* time — attach the
checkpointed PTE/VMA leaves, init the upper tables — but the simulator
used to pay O(image) *host* CPU on every restore: re-concatenating the
frame set for the RAS checksum verify, re-deref'ing every heap offset,
re-decoding the global-state blob, re-deriving prefetch page sets.
Cluster-scale and fig10 replay thousands of cold starts from a handful of
warm images, so that host cost dominated the wall clock.

A :class:`RestorePlan` memoizes, per checkpoint, every restore input that
is a pure function of the sealed image:

* the concatenated frame array the RAS verify scans (plus a cached
  clean-verify verdict, keyed by the pool's poison epoch);
* the PTE-leaf attach list (leaf index -> leaf object) and the numpy
  attach arrays (leaf indices, CXL-residency flags, backing frames);
* the frozen VMA construction specs (attached leaf objects for cxlfork,
  rebuilt immutable ``Vma`` objects for CRIU/Mitosis) and ``max_vpn``;
* the upper-level page-table count (a pure function of the leaf-index
  set, since restored tasks start with an empty tree);
* the CRIU pagemap install decisions (which runs are skipped as clean
  file pages) and the naive-restore installed-page total;
* the dirty-page prefetch selection masks (DIRTY bits on checkpoint
  leaves are stable post-seal: checkpoint PTEs never carry WRITE, so no
  child write can ever set DIRTY on a shared leaf);
* the decoded global-state blob and its decode cost (keyed by codec
  identity, so differently-configured codecs never share a decode).

What is deliberately **not** cached: the ACCESSED-hot page sets.  Children
set the A bit on shared checkpoint leaves as they run (the §4.3 harvesting
channel), so ``_sync_prefetch_hot`` must re-derive hotness live on every
restore — a cached hot set would freeze the harvest.

Invalidation contract
---------------------
A plan is keyed by the checkpoint's identity plus three explicit epochs,
captured at build time:

* ``checkpoint._plan_epoch`` — bumped by
  :func:`repro.ras.checksum.invalidate_restore_plan` whenever the sealed
  image mutates in place: a re-seal, or the RAS repairer rewriting frames
  (``Repairer._rewrite_image`` / ``_rewrite_files``);
* ``FrameAllocator.epoch`` — bumped on every poison-visibility change
  (``poison()``, ``clear_poison()``, poisoned-frame offlining in
  ``put()``), exactly the sites that already drop ``_bad_cache``;
* ``ChunkIndex.epoch`` — bumped on every dedup ``repoint()`` (content
  moving between frames under a live image).

A stale plan is **rebuilt, never served**: :func:`plan_for` compares the
captured key against the live epochs and discards on any mismatch.  The
seeded ``stale-restore-plan`` mutation (:mod:`repro.check.mutation`)
deliberately serves across a bump so the checksum/oracle layer can prove
it would catch the corruption.

Everything a plan serves is bit-identical to what a planless restore
computes, so simulated time, metrics breakdowns, and bench digests are
unchanged with the cache on or off (``RESTORE_PLAN.force(False)`` scopes
a differential check; the ``REPRO_RESTORE_PLAN=0`` environment variable
forces it off process-wide, workers included).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from repro.check import mutation as _mutation
from repro.ras import RAS
from repro.ras.checksum import verify_frames


class RestorePlanRuntime:
    """Process-wide switch for the restore-plan cache (default **on**).

    Mirrors :class:`repro.ras.RasRuntime` / :class:`repro.dedup
    .DedupRuntime`: a module-level singleton with an override stack for
    differential tests.  Unlike those, the cache is purely a host-side
    optimization, so it defaults on and is forced off only to prove the
    bit-identical contract (CI runs the quick digests both ways).
    """

    def __init__(self) -> None:
        self.enabled = os.environ.get("REPRO_RESTORE_PLAN", "1") != "0"
        self._forced: Optional[bool] = None
        self.builds = 0
        self.hits = 0
        self.invalidations = 0

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def active(self) -> bool:
        if self._forced is not None:
            return self._forced
        return self.enabled

    @contextmanager
    def force(self, value: bool) -> Iterator[None]:
        """Temporarily pin the runtime on/off (differential testing)."""
        saved = self._forced
        self._forced = value
        try:
            yield
        finally:
            self._forced = saved

    def reset(self) -> None:
        self.enabled = os.environ.get("REPRO_RESTORE_PLAN", "1") != "0"
        self._forced = None
        self.builds = 0
        self.hits = 0
        self.invalidations = 0

    def summary(self) -> dict:
        return {
            "enabled": self.enabled,
            "builds": self.builds,
            "hits": self.hits,
            "invalidations": self.invalidations,
        }


#: The singleton every mechanism consults.
RESTORE_PLAN = RestorePlanRuntime()


class RestorePlan:
    """One checkpoint's memoized restore inputs (see module docstring).

    A dumb container: each mechanism's ``build_restore_plan`` populates
    the fields it needs and leaves the rest ``None``.  Fields keyed by a
    collaborator (codec, prefetcher effectiveness) fill lazily and
    revalidate against that collaborator on every serve.
    """

    __slots__ = (
        # identity + epochs (set by plan_for)
        "key",
        # RAS verify
        "frames",
        "verified_pool_epoch",
        # page-table attach
        "pt_attach",
        "leaf_indices",
        "leaf_cxl_resident",
        "backing_frames",
        "upper_tables",
        "naive_installed",
        # VMA construction
        "vma_leaves",
        "vma_specs",
        "max_vpn",
        # CRIU page install / metadata
        "install_specs",
        "total_installed",
        "n_meta_records",
        # lazily-filled, collaborator-keyed fields
        "_codec_ref",
        "global_state",
        "global_decode_ns",
        "ns_record",
        "prefetch_specs",
        "prefetch_effectiveness",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, None)


def checkpoint_plan_epoch(checkpoint: Any) -> int:
    """The checkpoint-local invalidation epoch (0 until first bump)."""
    return getattr(checkpoint, "_plan_epoch", 0)


def plan_key(checkpoint: Any, fabric: Any) -> tuple:
    """The live epoch triple a valid plan must have captured."""
    pool = fabric.device.frames
    index = getattr(fabric, "_chunk_index", None)
    return (
        checkpoint_plan_epoch(checkpoint),
        pool.epoch,
        0 if index is None else index.epoch,
    )


def cached_plan(checkpoint: Any) -> Optional[RestorePlan]:
    """The plan memoized on ``checkpoint``, valid or not (introspection)."""
    return getattr(checkpoint, "_restore_plan", None)


def plan_for(
    checkpoint: Any,
    fabric: Any,
    build: Callable[[Any], RestorePlan],
) -> Optional[RestorePlan]:
    """Return a valid plan for ``checkpoint``, building one if needed.

    Returns ``None`` when the runtime is off — callers fall back to the
    planless path, which computes exactly what a plan would have served.
    A memoized plan whose captured epochs no longer match the live ones
    is discarded and rebuilt (never served), except under the seeded
    ``stale-restore-plan`` mutation, which serves it anyway so the
    checksum/oracle layer can prove it catches the consequences.
    """
    if not RESTORE_PLAN.active():
        return None
    key = plan_key(checkpoint, fabric)
    plan = getattr(checkpoint, "_restore_plan", None)
    if plan is not None:
        if plan.key == key:
            RESTORE_PLAN.hits += 1
            return plan
        if _mutation.active("stale-restore-plan"):
            # Seeded bug: serve across the epoch bump (see repro.check).
            RESTORE_PLAN.hits += 1
            return plan
        RESTORE_PLAN.invalidations += 1
    plan = build(checkpoint)
    plan.key = key
    checkpoint._restore_plan = plan
    RESTORE_PLAN.builds += 1
    return plan


def drop_plan(checkpoint: Any) -> None:
    """Release a deleted checkpoint's plan (frees its numpy arrays)."""
    if getattr(checkpoint, "_restore_plan", None) is not None:
        checkpoint._restore_plan = None


def verify_planned(pool: Any, plan: RestorePlan, *, context: str) -> None:
    """RAS-verify a checkpoint through its plan's cached frame array.

    Bit-compatible with :func:`repro.ras.checksum.verify_checkpoint`: the
    per-serve ``RAS.verifications`` increment is preserved, detections
    raise identically, and only the O(image) frame concatenation (plus,
    when the pool is dirty, a re-scan already proven clean at this exact
    pool epoch) is skipped.  A clean verdict is cached keyed by the
    pool's poison epoch; any poison/clear/offline event bumps that epoch
    and forces a fresh scan.
    """
    if plan.verified_pool_epoch is not None and (
        plan.verified_pool_epoch == pool.epoch
        or _mutation.active("stale-restore-plan")
    ):
        RAS.verifications += 1
        return
    verify_frames(pool, plan.frames, context=context)
    plan.verified_pool_epoch = pool.epoch


__all__ = [
    "RESTORE_PLAN",
    "RestorePlan",
    "RestorePlanRuntime",
    "cached_plan",
    "checkpoint_plan_epoch",
    "drop_plan",
    "plan_for",
    "plan_key",
    "verify_planned",
]
