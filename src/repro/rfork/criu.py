"""CRIU-CXL: the state-of-practice baseline (§2.3.1, §6.2).

Checkpoint: serialize the *entire* process image — task, registers, fds,
namespaces, VMAs, pagemaps, and the raw contents of every anonymous or
dirty page — with the protobuf-like codec into files on the shared
in-CXL-memory file system.  Clean private file pages are skipped (CRIU
relies on the identical root FS to fault them back in).

Restore: read the image files from CXL, deserialize everything, recreate
every VMA with mmap calls, and copy every dumped page into freshly
allocated local memory.  Parent and child share no state afterwards, which
is why CRIU's child consumes ~cold-start memory (Fig. 7b).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Optional

import numpy as np

from repro.dedup import DEDUP
from repro.dedup.seal import ChunkInterner, seal_codes
from repro.os.fs.cxlfs import CxlFileSystem
from repro.os.mm.pagetable import PTES_PER_LEAF
from repro.os.mm.pte import PteFlags
from repro.os.mm.vma import VmaKind
from repro.os.node import ComputeNode
from repro.os.proc.namespaces import NamespaceSet
from repro.os.proc.task import Task, TaskState
from repro.ras import RAS, seal_checkpoint, verify_checkpoint
from repro.ras.checksum import checkpoint_frames
from repro.rfork.restoreplan import (
    RestorePlan,
    drop_plan,
    plan_for,
    verify_planned,
)
from repro.rfork.base import (
    FD_REOPEN_NS,
    MMAP_SYSCALL_NS,
    NS_RESTORE_NS,
    PROC_CREATE_NS,
    CheckpointMetrics,
    RemoteForkMechanism,
    RestoreMetrics,
    RestoreResult,
)
from repro.serial.codec import Codec
from repro.serial.records import (
    PagemapRecord,
    TaskRecord,
    VmaRecord,
    pagemap_records,
    task_to_records,
    vma_records,
)
from repro.sim.npx import count_in_range, ensure_sorted, mask_in_range
from repro.sim.units import PAGE_SIZE
from repro.telemetry import TRACE

#: Installing one restored page's PTE (beyond the data copy itself).
PTE_INSTALL_NS = 120.0
#: Per-page handling while restoring pages.img: CRIU walks pagemap entries
#: and preads/installs 4 KiB at a time, paying syscall + bookkeeping per
#: page (this, not raw bandwidth, dominates its restore — §7.1's 16-423 ms).
PAGE_RESTORE_NS = 1_500.0


class CriuCheckpoint:
    """A CRIU image set on the in-CXL-memory file system."""

    def __init__(self, comm: str, cxlfs: CxlFileSystem, image_id: str) -> None:
        self.comm = comm
        self.cxlfs = cxlfs
        self.image_id = image_id
        self.task_record: Optional[TaskRecord] = None
        self.vma_records: list[VmaRecord] = []
        self.pagemaps: list[PagemapRecord] = []
        self.dumped_pages = 0
        self.metadata_bytes = 0
        self._deleted = False
        #: Dedup (repro.dedup): sorted vpns of dumped pages and their
        #: content codes (empty when sealed with dedup off).
        self.page_code_vpns = np.empty(0, dtype=np.int64)
        self.page_codes = np.empty(0, dtype=np.int64)
        #: Chunk frames adopted from the pod's index instead of being
        #: stored in pages.img (this image holds one fabric ref per frame).
        self.chunk_frames = np.empty(0, dtype=np.int64)
        self.dedup_pages = 0
        self.zero_elided_pages = 0

    @property
    def file_paths(self) -> list:
        prefix = f"/criu/{self.image_id}"
        return [f"{prefix}/{name}" for name in ("task.img", "vmas.img", "pagemap.img", "pages.img")]

    @property
    def data_bytes(self) -> int:
        """Logical payload: every dumped page, wherever it is stored.
        Restore copies (and a full ship transfers) all of it, so dedup
        must not change this — only where the bytes live."""
        return self.dumped_pages * PAGE_SIZE

    @property
    def stored_data_bytes(self) -> int:
        """Bytes actually written to pages.img (dedup'd pages resolve to
        shared chunk frames instead)."""
        return (self.dumped_pages - self.dedup_pages) * PAGE_SIZE

    @property
    def cxl_bytes(self) -> int:
        return self.data_bytes + self.metadata_bytes

    @property
    def resident_cxl_bytes(self) -> int:
        """Device bytes this image added: pages.img + metadata.  Adopted
        chunk frames are borrowed from other checkpoints, not added."""
        return self.stored_data_bytes + self.metadata_bytes

    def delete(self) -> None:
        if self._deleted:
            return
        self._deleted = True
        drop_plan(self)
        if self.chunk_frames.size:
            fabric = self.cxlfs.fabric
            index = getattr(fabric, "_chunk_index", None)
            if index is not None:
                index.release(self.chunk_frames)
            fabric.put_frames(self.chunk_frames)
        for path in self.file_paths:
            if self.cxlfs.exists(path):
                self.cxlfs.unlink(path)


def build_restore_plan(checkpoint: CriuCheckpoint) -> RestorePlan:
    """Memoize the image-derived restore inputs.

    The rebuilt :class:`~repro.os.mm.vma.Vma` list is safe to share across
    restored tasks (``Vma`` is a frozen dataclass), and the pagemap-install
    decisions replicate the restore loop's skip rule — a run dumped only
    because its VMA is not clean-file-backed — which depends only on the
    checkpoint's own records.  Per-restore side effects (``rootfs.ensure``,
    frame allocation, ``map_range``) stay live.
    """
    plan = RestorePlan()
    plan.frames = checkpoint_frames(checkpoint)
    plan.n_meta_records = 4 + len(checkpoint.vma_records) + len(checkpoint.pagemaps)
    vmas = [r.rebuild(file_registered=True) for r in checkpoint.vma_records]
    plan.vma_specs = vmas
    # Replicate VmaTree.find over the record set: a pagemap run is skipped
    # iff it is neither dirty nor hardware-writable and lands in a private
    # file mapping (those pages were never dumped).
    by_start = sorted(vmas, key=lambda v: v.start_vpn)
    starts = [v.start_vpn for v in by_start]
    skip_flags = int(PteFlags.DIRTY) | int(PteFlags.WRITE)
    install: list[tuple[int, int]] = []
    total = 0
    for pagemap in checkpoint.pagemaps:
        if not pagemap.flags & skip_flags:
            i = bisect_right(starts, pagemap.start_vpn) - 1
            if i >= 0:
                vma = by_start[i]
                if (
                    vma.start_vpn <= pagemap.start_vpn < vma.start_vpn + vma.npages
                    and vma.kind is VmaKind.FILE_PRIVATE
                ):
                    continue
        install.append((pagemap.start_vpn, pagemap.npages))
        total += pagemap.npages
    plan.install_specs = install
    plan.total_installed = total
    return plan


class CriuCxl(RemoteForkMechanism):
    """Checkpoint/Restore in Userspace, ported onto CXL shared memory."""

    name = "criu-cxl"
    #: CRIU restores from a file system, which ghost containers do not
    #: provide a mount of (§6.2: "CRIU-CXL is not compatible with ghost
    #: containers").
    supports_ghost_containers = False

    _image_counter = 0

    def __init__(self, cxlfs: CxlFileSystem, *, codec: Optional[Codec] = None) -> None:
        self.cxlfs = cxlfs
        self.codec = codec or Codec()

    # -- checkpoint -----------------------------------------------------------

    def checkpoint(self, task: Task) -> tuple[CriuCheckpoint, CheckpointMetrics]:
        node = task.node
        latency = node.fabric.latency
        metrics = CheckpointMetrics()
        span = TRACE.span("criu.checkpoint", clock=node.clock, comm=task.comm)
        if span.recording:
            metrics.span = span
        task.freeze()
        ckpt: Optional[CriuCheckpoint] = None
        try:
            CriuCxl._image_counter += 1
            ckpt = CriuCheckpoint(
                task.comm, self.cxlfs, f"{task.comm}-{CriuCxl._image_counter}"
            )
            ckpt.task_record = task_to_records(task)
            ckpt.vma_records = vma_records(task)
            ckpt.pagemaps = pagemap_records(task)

            # Pages to dump: anonymous pages always; file pages only if dirty.
            file_clean_vpns = self._file_clean_pages(task)
            dumped = 0
            for record in ckpt.pagemaps:
                dumped += record.npages - count_in_range(
                    file_clean_vpns, record.start_vpn, record.start_vpn + record.npages
                )
            ckpt.dumped_pages = dumped

            # Content-addressed dump (repro.dedup): resolve each dumped
            # page's content code; pages whose chunk the pod already holds
            # are *adopted* (one fabric ref on the shared frame) instead of
            # being written into pages.img.  CRIU only consumes the index —
            # its stored pages live inside image files, not one-page frames,
            # so misses are never registered as chunks.
            if DEDUP.active():
                fabric = node.fabric
                index = fabric.chunk_index
                code_map, zero_elided = seal_codes(task, index)
                interner = ChunkInterner(index, fabric)
                vpn_chunks: list[np.ndarray] = []
                code_chunks: list[np.ndarray] = []
                chunk_frames: list[int] = []
                for record in ckpt.pagemaps:
                    clean = mask_in_range(
                        file_clean_vpns, record.start_vpn, record.npages
                    )
                    vpns = record.start_vpn + np.nonzero(~clean)[0]
                    if not vpns.size:
                        continue
                    codes = np.empty(vpns.size, dtype=np.int64)
                    for i, vpn in enumerate(vpns):
                        leaf_codes = code_map.get(int(vpn) // PTES_PER_LEAF)
                        code = (
                            int(leaf_codes[int(vpn) & (PTES_PER_LEAF - 1)])
                            if leaf_codes is not None
                            else 0
                        )
                        codes[i] = code
                        frame = interner.adopt_only(code)
                        if frame is not None:
                            chunk_frames.append(frame)
                    vpn_chunks.append(vpns)
                    code_chunks.append(codes)
                if vpn_chunks:
                    ckpt.page_code_vpns = np.concatenate(vpn_chunks)
                    ckpt.page_codes = np.concatenate(code_chunks)
                ckpt.chunk_frames = np.asarray(chunk_frames, dtype=np.int64)
                ckpt.dedup_pages = len(chunk_frames)
                ckpt.zero_elided_pages = zero_elided
                index.stats.zero_elided += zero_elided
                interner.finish()

            # Serialize metadata + page data; write files to the CXL FS.
            # With dedup on, pages.img only stores the non-adopted pages
            # (serialization and file-write costs shrink with it); the
            # logical data_bytes — what restore copies — is unchanged.
            task_wire = ckpt.task_record.to_wire()
            vma_wire = [r.to_wire() for r in ckpt.vma_records]
            map_wire = [r.to_wire() for r in ckpt.pagemaps]
            blob_t, t_ns = self.codec.encode_with_cost(task_wire, nrecords=4)
            blob_v, v_ns = self.codec.encode_with_cost(vma_wire, nrecords=len(vma_wire))
            blob_m, m_ns = self.codec.encode_with_cost(map_wire, nrecords=len(map_wire))
            stored_pages = dumped - ckpt.dedup_pages
            stored_bytes = stored_pages * PAGE_SIZE
            metrics.note("serialize_metadata", t_ns + v_ns + m_ns)
            metrics.note(
                "serialize_pages",
                self.codec.costs.encode_ns(stored_bytes, stored_pages),
            )
            prefix = f"/criu/{ckpt.image_id}"
            self.cxlfs.write_file(f"{prefix}/task.img", len(blob_t))
            self.cxlfs.write_file(f"{prefix}/vmas.img", len(blob_v))
            self.cxlfs.write_file(f"{prefix}/pagemap.img", len(blob_m))
            self.cxlfs.write_file(f"{prefix}/pages.img", stored_bytes)
            ckpt.metadata_bytes = len(blob_t) + len(blob_v) + len(blob_m)
            metrics.note(
                "write_files",
                latency.copy_ns(
                    ckpt.metadata_bytes + stored_bytes, src_cxl=False, dst_cxl=True
                ),
            )
            metrics.serialized_bytes = ckpt.metadata_bytes + stored_bytes
            metrics.cxl_bytes = ckpt.cxl_bytes
            # Part of the operation: crash alarms in the window fire here.
            node.clock.advance(metrics.latency_ns)
            # Seal: checksum every image-file frame.  Mid-checkpoint poison
            # (an alarm in the advance above) fails the seal and the
            # cleanup below unlinks the corrupt image files.
            if RAS.active():
                seal_checkpoint(ckpt, context="criu.seal")
        except BaseException:
            span.finish()  # failed checkpoints must not leave the span open
            if ckpt is not None:
                ckpt.delete()  # unlink whatever image files were written
            raise
        finally:
            task.thaw()
        span.set(pages=ckpt.dumped_pages, cxl_bytes=ckpt.cxl_bytes)
        span.finish()
        node.log.emit(node.clock.now, "criu_checkpoint", comm=task.comm,
                      pages=ckpt.dumped_pages)
        return ckpt, metrics

    @staticmethod
    def _file_clean_pages(task: Task) -> np.ndarray:
        """Sorted vpns of present, clean, file-backed pages (not dumped by
        CRIU).  Sorted ascending so the checkpoint scans can use the
        searchsorted helpers instead of ``np.isin``.

        Clean means *never privately modified*, not merely not-dirty: a
        CoW-broken private copy stays hardware-writable after ``season()``
        (or A/D harvesting) clears its DIRTY bit, and skipping it would
        restore the pristine file bytes instead of the parent's — a silent
        semantic divergence the differential oracle catches."""
        clean_mask = np.int64(int(PteFlags.DIRTY) | int(PteFlags.WRITE))
        chunks = []
        for vma in task.mm.vmas:
            if vma.kind is not VmaKind.FILE_PRIVATE:
                continue
            ptes = task.mm.pagetable.gather_ptes(vma.start_vpn, vma.npages)
            present = (ptes & np.int64(int(PteFlags.PRESENT))) != 0
            clean = (ptes & clean_mask) == 0
            sel = np.nonzero(present & clean)[0]
            if sel.size:
                chunks.append(vma.start_vpn + sel)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        # VMA iteration order is ascending, so the chunks concatenate sorted;
        # ensure_sorted is a cheap monotonicity check in that common case.
        return ensure_sorted(np.concatenate(chunks))

    # -- restore --------------------------------------------------------------

    def restore(
        self,
        checkpoint: CriuCheckpoint,
        node: ComputeNode,
        *,
        container: Optional[Any] = None,
        policy: Optional[Any] = None,
    ) -> RestoreResult:
        if policy is not None:
            raise ValueError("CRIU-CXL has no tiering policies; state is fully copied")
        plan = plan_for(checkpoint, node.fabric, build_restore_plan)
        if RAS.active():
            # Fail before spawning anything: a corrupt image never serves.
            if plan is not None:
                verify_planned(
                    node.fabric.device.frames, plan, context="criu.restore"
                )
            else:
                verify_checkpoint(checkpoint, context="criu.restore")
        kernel = node.kernel
        metrics = RestoreMetrics()
        span = TRACE.span(
            "criu.restore", clock=node.clock, comm=checkpoint.comm, node=node.name
        )
        if span.recording:
            metrics.span = span

        metrics.note("process_create", PROC_CREATE_NS)
        task = kernel.spawn_task(checkpoint.comm, container=container)
        try:
            result = self._restore_into(task, checkpoint, node, metrics, plan)
            span.finish()
            return result
        except BaseException:
            span.finish()
            # Failed restores must not leak frames; a mid-restore node
            # crash already tore the task down via node.fail().
            if task.state is not TaskState.DEAD:
                kernel.exit_task(task)
            raise

    def _restore_into(
        self, task, checkpoint, node, metrics, plan=None
    ) -> RestoreResult:
        kernel = node.kernel
        latency = node.fabric.latency

        # Read and deserialize every image file from the CXL FS.
        meta_bytes = checkpoint.metadata_bytes
        data_bytes = checkpoint.data_bytes
        metrics.note(
            "read_files",
            latency.copy_ns(meta_bytes + data_bytes, src_cxl=True, dst_cxl=False),
        )
        if plan is not None:
            n_meta_records = plan.n_meta_records
        else:
            n_meta_records = (
                4 + len(checkpoint.vma_records) + len(checkpoint.pagemaps)
            )
        metrics.note(
            "deserialize_metadata",
            self.codec.costs.decode_ns(meta_bytes, n_meta_records),
        )
        metrics.note(
            "deserialize_pages", PAGE_RESTORE_NS * checkpoint.dumped_pages
        )

        record = checkpoint.task_record
        task.regs = record.regs.restore_into()
        for fd_record in record.fds:
            entry = fd_record.reopen()
            inode = node.rootfs.ensure(entry.path)
            from dataclasses import replace as dc_replace

            task.fdtable.install(dc_replace(entry, inode=inode.ino))
        metrics.note("fd_reopen", FD_REOPEN_NS * len(record.fds))
        task.namespaces = NamespaceSet.restore_into(
            {"pid": record.namespaces.pid_ns, "mnt": record.namespaces.mnt_ns},
            task.namespaces,
        )
        metrics.note("ns_restore", NS_RESTORE_NS)

        # Recreate every VMA with mmap calls.  The rebuilt Vma objects are
        # immutable, so the plan shares one list across all restores.
        if plan is not None:
            vmas = plan.vma_specs
        else:
            vmas = [r.rebuild(file_registered=True) for r in checkpoint.vma_records]
        for vma in vmas:
            if vma.is_file_backed():
                node.rootfs.ensure(vma.path, size_bytes=vma.npages * PAGE_SIZE)
            task.mm.vmas.insert(vma)
            task.mm.note_range_used(vma.start_vpn, vma.npages)
        metrics.note("vma_rebuild", MMAP_SYSCALL_NS * len(checkpoint.vma_records))

        # Copy every dumped page into fresh local memory.
        flags = (
            PteFlags.PRESENT
            | PteFlags.WRITE
            | PteFlags.USER
            | PteFlags.ACCESSED
            | PteFlags.DIRTY
        )
        if plan is not None:
            install_specs = plan.install_specs
            total_installed = plan.total_installed
        else:
            install_specs = []
            total_installed = 0
            for pagemap in checkpoint.pagemaps:
                # Skip runs that were not dumped (clean file pages: neither
                # dirty nor a hardware-writable private copy — mirrors
                # ``_file_clean_pages``).
                if not pagemap.flags & (int(PteFlags.DIRTY) | int(PteFlags.WRITE)):
                    vma = task.mm.vmas.find(pagemap.start_vpn)
                    if vma is not None and vma.kind is VmaKind.FILE_PRIVATE:
                        continue
                install_specs.append((pagemap.start_vpn, pagemap.npages))
                total_installed += pagemap.npages
        for start_vpn, npages in install_specs:
            frames = kernel.alloc_local_frames(task.mm, npages)
            task.mm.pagetable.map_range(start_vpn, frames, int(flags))
        metrics.copied_pages = total_installed
        metrics.note("install_pages", PTE_INSTALL_NS * total_installed)

        node.clock.advance(metrics.latency_ns)
        node.log.emit(node.clock.now, "criu_restore", comm=checkpoint.comm,
                      node=node.name, pages=total_installed)
        return RestoreResult(task=task, metrics=metrics)


__all__ = ["CriuCxl", "CriuCheckpoint", "build_restore_plan"]
