"""Vanilla cold start — spawn the function from scratch (Fig. 7's Cold).

A builder callable constructs the function instance on the target node,
charging the function's measured state-initialization latency (runtime
startup, imports, model loading: 250-500 ms in the paper's Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.os.node import ComputeNode
from repro.os.proc.task import Task
from repro.rfork.base import (
    CheckpointMetrics,
    RemoteForkMechanism,
    RestoreMetrics,
    RestoreResult,
)


@dataclass(frozen=True)
class ColdImage:
    """The 'checkpoint' of a cold start: just the function's identity."""

    comm: str

    def delete(self) -> None:
        """Nothing to release."""


#: A builder constructs the function process on a node (inside an optional
#: container), advances that node's clock by the initialization time, and
#: returns ``(task, init_ns)``.
Builder = Callable[[ComputeNode, Optional[Any]], "tuple[Task, float]"]


class ColdStart(RemoteForkMechanism):
    """Create a brand-new instance: runtime boot + state initialization."""

    name = "cold"
    supports_ghost_containers = True

    def __init__(self, builder: Builder) -> None:
        self.builder = builder

    def checkpoint(self, task: Task) -> tuple[ColdImage, CheckpointMetrics]:
        return ColdImage(task.comm), CheckpointMetrics()

    def restore(
        self,
        checkpoint: ColdImage,
        node: ComputeNode,
        *,
        container: Optional[Any] = None,
        policy: Optional[Any] = None,
    ) -> RestoreResult:
        if policy is not None:
            raise ValueError("cold start has no tiering policies")
        task, init_ns = self.builder(node, container)
        if task.comm != checkpoint.comm:
            raise ValueError(
                f"builder produced {task.comm!r}, expected {checkpoint.comm!r}"
            )
        metrics = RestoreMetrics()
        metrics.note("state_init", init_ns)
        return RestoreResult(task=task, metrics=metrics)


__all__ = ["ColdStart", "ColdImage", "Builder"]
