"""Local fork — the intra-node reference baseline (Fig. 7's LocalFork).

The "checkpoint" is simply a warm parent instance kept alive on the target
node; restoring is a classic CoW fork.  This is the bar every remote-fork
mechanism is measured against.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.os.node import ComputeNode
from repro.os.proc.task import Task
from repro.rfork.base import (
    CheckpointMetrics,
    RemoteForkMechanism,
    RestoreMetrics,
    RestoreResult,
)
from repro.telemetry import TRACE


class LocalFork(RemoteForkMechanism):
    """fork() from a warm parent on the same node."""

    name = "localfork"
    supports_ghost_containers = True

    def checkpoint(self, task: Task) -> tuple[Task, CheckpointMetrics]:
        """The warm parent *is* the checkpoint; nothing is captured."""
        return task, CheckpointMetrics()

    def restore(
        self,
        checkpoint: Task,
        node: ComputeNode,
        *,
        container: Optional[Any] = None,
        policy: Optional[Any] = None,
    ) -> RestoreResult:
        if checkpoint.node is not node:
            raise ValueError(
                f"local fork cannot cross nodes: parent on {checkpoint.node.name}, "
                f"target {node.name}"
            )
        if policy is not None:
            raise ValueError("local fork has no tiering policies")
        metrics = RestoreMetrics()
        # No metrics.span binding here: the kernel already records a
        # "kernel.local_fork" child span covering the same interval, and a
        # "fork" phase child on top would double-attribute the time.
        with TRACE.span("localfork.restore", clock=node.clock, comm=checkpoint.comm):
            child, stats = node.kernel.local_fork(checkpoint)
            if container is not None:
                child.cgroup = container.cgroup
                child.namespaces = container.namespaces
            metrics.note("fork", stats.cost_ns)
        return RestoreResult(task=child, metrics=metrics)

    def delete_checkpoint(self, checkpoint: Task) -> None:
        """Keep the warm parent alive — it is a live process, not storage."""


__all__ = ["LocalFork"]
