"""ResilientFork: retry transient faults, then degrade gracefully.

Wraps CXLfork with the recovery policies of :mod:`repro.faults.recovery`:

* **Transient faults** (a momentarily exhausted CXL pool, an allocation
  failure injected by the fault framework) are retried with capped
  exponential backoff plus deterministic jitter, waiting in virtual time.
* **Persistent CXL exhaustion** degrades the *checkpoint* path from
  cxlfork to CRIU-CXL: the CRIU image skips clean private file pages, so
  it fits where a full CXLfork image did not — trading restore latency
  for admission, rather than failing the fork outright.
* **Mid-checkpoint poison** (a RAS seal failure,
  :class:`repro.exceptions.PoisonError`) is treated like a transient
  fault on the checkpoint path: the corrupt image was already torn down
  by the mechanism's cleanup, so a retry writes a fresh one into fresh
  frames (the poisoned ones are offlined and never recycled).  If the
  pool keeps poisoning, the CRIU fallback gets its chance.  Restores do
  *not* retry poison — re-reading the same corrupt image is
  deterministic failure; the RAS repair ladder owns that path.
* **Dead nodes are not retried**: :class:`NodeFailedError` propagates
  immediately (the porter's failure detector owns re-placement).

Restores dispatch on the checkpoint's actual type, so a degraded (CRIU)
checkpoint restores through CRIU transparently.

Both paths run through the restore-plan cache
(:mod:`repro.rfork.restoreplan`) of whichever mechanism serves them.  The
recovery ladder composes with the cache's epoch contract for free: a
poison/offline event bumps the pool epoch, so the retried restore rebuilds
its plan against the repaired image instead of serving memoized attach
arrays that reference the old frames.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cxl.allocator import OutOfMemoryError
from repro.cxl.fabric import CxlFabric
from repro.exceptions import PoisonError
from repro.faults.recovery import RetryExhaustedError, RetryPolicy, call_with_retries
from repro.os.fs.cxlfs import CxlFileSystem
from repro.os.kernel import NodeFailedError
from repro.os.node import ComputeNode
from repro.os.proc.task import Task
from repro.rfork.base import (
    CheckpointMetrics,
    RemoteForkMechanism,
    RestoreResult,
)
from repro.rfork.criu import CriuCheckpoint, CriuCxl
from repro.rfork.cxlfork import CxlFork
from repro.sim.rng import RngStream, SeedSequenceFactory
from repro.telemetry import TRACE


class ResilientFork(RemoteForkMechanism):
    """CXLfork with transient-fault retries and CRIU-CXL fallback."""

    name = "resilient"
    supports_ghost_containers = True

    def __init__(
        self,
        *,
        fabric: CxlFabric,
        cxlfs: CxlFileSystem,
        policy: Optional[RetryPolicy] = None,
        rng: Optional[RngStream] = None,
        seed: int = 0,
    ) -> None:
        self.fabric = fabric
        self.primary = CxlFork()
        self.fallback = CriuCxl(cxlfs)
        self.retry_policy = policy or RetryPolicy()
        self.rng = (
            rng
            if rng is not None
            else SeedSequenceFactory(seed).stream("resilient-fork")
        )

    # -- checkpoint ----------------------------------------------------------

    def checkpoint(self, task: Task) -> tuple[Any, CheckpointMetrics]:
        clock = task.node.clock
        try:
            return call_with_retries(
                lambda: self.primary.checkpoint(task),
                policy=self.retry_policy,
                clock=clock,
                rng=self.rng,
                retry_on=(OutOfMemoryError, PoisonError),
                label="resilient.checkpoint",
            )
        except RetryExhaustedError as exc:
            if not isinstance(exc.last, (OutOfMemoryError, PoisonError)):
                raise  # pragma: no cover - retry_on limits the error set
            # Graceful degradation: the CXL pool cannot hold a full CXLfork
            # image.  A CRIU image is smaller (clean file pages skipped);
            # fall back rather than failing the fork.
            TRACE.count("resilient.fallback_checkpoint")
            reason = (
                "cxl_exhausted"
                if isinstance(exc.last, OutOfMemoryError)
                else "poisoned_pool"
            )
            task.node.log.emit(
                clock.now, "resilient_fallback", comm=task.comm,
                reason=reason, to=self.fallback.name,
            )
            return call_with_retries(
                lambda: self.fallback.checkpoint(task),
                policy=self.retry_policy,
                clock=clock,
                rng=self.rng,
                retry_on=(OutOfMemoryError,),
                label="resilient.checkpoint_fallback",
            )

    # -- restore -------------------------------------------------------------

    def restore(
        self,
        checkpoint: Any,
        node: ComputeNode,
        *,
        container: Optional[Any] = None,
        policy: Optional[Any] = None,
    ) -> RestoreResult:
        if node.failed:
            raise NodeFailedError(f"restore target {node.name!r} has failed")
        if isinstance(checkpoint, CriuCheckpoint):
            mechanism = self.fallback
            policy = None  # CRIU has no tiering policies
        else:
            mechanism = self.primary

        def attempt() -> RestoreResult:
            if node.failed:
                raise NodeFailedError(
                    f"restore target {node.name!r} failed while backing off"
                )
            return mechanism.restore(
                checkpoint, node, container=container, policy=policy
            )

        return call_with_retries(
            attempt,
            policy=self.retry_policy,
            clock=node.clock,
            rng=self.rng,
            retry_on=(OutOfMemoryError,),
            label="resilient.restore",
        )


__all__ = ["ResilientFork"]
