"""The common checkpoint/restore interface all mechanisms implement."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.os.node import ComputeNode
from repro.os.proc.task import Task

#: Cost of creating the process that will call <mechanism>-restore on the
#: target node (clone + basic setup inside an existing container).
PROC_CREATE_NS = 500_000.0
#: Re-opening one file descriptor by path on the restoring node.
FD_REOPEN_NS = 20_000.0
#: Restoring mount points + the PID namespace.
NS_RESTORE_NS = 300_000.0
#: One mmap() call while rebuilding an address space (CRIU/Mitosis restore).
MMAP_SYSCALL_NS = 3_000.0


@dataclass
class CheckpointMetrics:
    """What taking a checkpoint cost and where the state landed."""

    latency_ns: float = 0.0
    cxl_bytes: int = 0
    local_shadow_bytes: int = 0
    serialized_bytes: int = 0
    breakdown: dict[str, float] = field(default_factory=dict)
    #: Open telemetry span mirroring the breakdown as phase child spans
    #: (set by the mechanism while tracing is enabled; see repro.telemetry).
    span: Any = field(default=None, repr=False, compare=False)

    def note(self, phase: str, ns: float) -> None:
        self.breakdown[phase] = self.breakdown.get(phase, 0.0) + ns
        self.latency_ns += ns
        if self.span is not None:
            self.span.add_phase(phase, ns)


@dataclass
class RestoreMetrics:
    """What a restore cost on its critical path (and off it)."""

    latency_ns: float = 0.0
    background_ns: float = 0.0
    prefetched_pages: int = 0
    copied_pages: int = 0
    breakdown: dict[str, float] = field(default_factory=dict)
    #: Open telemetry span mirroring the breakdown as phase child spans.
    span: Any = field(default=None, repr=False, compare=False)

    def note(self, phase: str, ns: float) -> None:
        self.breakdown[phase] = self.breakdown.get(phase, 0.0) + ns
        self.latency_ns += ns
        if self.span is not None:
            self.span.add_phase(phase, ns)


@dataclass
class RestoreResult:
    """A restored (cloned) task plus the metrics of restoring it."""

    task: Task
    metrics: RestoreMetrics


class RemoteForkMechanism(abc.ABC):
    """Checkpoint a process on one node; clone it on another."""

    #: Identifier used in experiment tables ("cxlfork", "criu-cxl", ...).
    name: str = "abstract"
    #: Whether restore can target a ghost container (CRIU-CXL cannot, §6.2).
    supports_ghost_containers: bool = True

    @abc.abstractmethod
    def checkpoint(self, task: Task) -> tuple[Any, CheckpointMetrics]:
        """Freeze ``task`` and capture its state; returns (checkpoint, metrics).

        Virtual time is charged to the *source* node's clock.
        """

    @abc.abstractmethod
    def restore(
        self,
        checkpoint: Any,
        node: ComputeNode,
        *,
        container: Optional[Any] = None,
        policy: Optional[Any] = None,
    ) -> RestoreResult:
        """Clone the checkpointed process onto ``node``.

        Virtual time is charged to the *target* node's clock.
        """

    def delete_checkpoint(self, checkpoint: Any) -> None:
        """Release the checkpoint's storage (object-store reclaim)."""
        checkpoint.delete()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


__all__ = [
    "RemoteForkMechanism",
    "CheckpointMetrics",
    "RestoreMetrics",
    "RestoreResult",
    "PROC_CREATE_NS",
    "FD_REOPEN_NS",
    "NS_RESTORE_NS",
    "MMAP_SYSCALL_NS",
]
