"""CXLfork: near zero-serialization, zero-copy remote fork over CXL (§3-§4).

Checkpoint: copy data pages and private OS structures (PTE leaves, VMA
leaves, registers) *as-is* into CXL memory with non-temporal stores, rewrite
the checkpointed PTEs to map the CXL replicas (preserving A/D bits), lightly
serialize only the global state (fd paths, mounts, PID namespace), and
**rebase** every internal pointer to a CXL offset so any OS instance can
dereference the graph.

Restore: create a process in the target container, redo the global state
from the small serialized blob, attach the checkpointed VMA leaves and
(under migrate-on-write) the checkpointed PTE leaves, initialize only the
upper page-table levels, prefetch checkpoint-dirty pages off the critical
path, and resume.  Data stays on the CXL tier, shared by every clone in the
pod, until a store CoWs it local.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Any, Optional

import numpy as np

from repro.check import mutation as _mutation
from repro.dedup import DEDUP
from repro.dedup.seal import ChunkInterner, seal_codes
from repro.os.kernel import CheckpointBacking
from repro.os.mm.pagetable import PTES_PER_LEAF, PageTable, PteLeaf
from repro.os.mm.pte import PTE_FRAME_SHIFT, PteFlags
from repro.os.mm.vma import VmaLeaf
from repro.os.node import ComputeNode
from repro.os.proc.namespaces import NamespaceSet
from repro.os.proc.task import Task, TaskState
from repro.ras import RAS, seal_checkpoint, verify_checkpoint
from repro.ras.checksum import checkpoint_frames
from repro.rfork.restoreplan import (
    RestorePlan,
    drop_plan,
    plan_for,
    verify_planned,
)
from repro.rfork.base import (
    FD_REOPEN_NS,
    NS_RESTORE_NS,
    PROC_CREATE_NS,
    CheckpointMetrics,
    RemoteForkMechanism,
    RestoreMetrics,
    RestoreResult,
)
from repro.serial.blob import CxlHeap
from repro.serial.codec import Codec
from repro.serial.rebase import RebaseError, Rebaser
from repro.serial.records import FdRecord, NamespaceRecord, RegsRecord
from repro.sim.npx import mask_in_range
from repro.sim.units import PAGE_SIZE
from repro.telemetry import TRACE
from repro.tiering.mow import MigrateOnWrite
from repro.tiering.prefetch import DirtyPagePrefetcher

#: Pointer-fixup cost per checkpointed structure during the rebase pass.
REBASE_FIXUP_NS = 150.0
#: Attaching one checkpointed PTE leaf (pin it, set the PMD entry, track
#: the leaf-CoW bit).
PTE_LEAF_ATTACH_NS = 2_000.0
#: Attaching one checkpointed VMA leaf.
VMA_LEAF_ATTACH_NS = 2_000.0
#: Allocating + initializing one upper-level page table at restore.
UPPER_TABLE_INIT_NS = 1_000.0
#: Estimated in-CXL size of one VMA struct (excluding its path string).
VMA_STRUCT_BYTES = 136
#: Per-present-page cost of hashing + chunk-index lookup when dedup is on
#: (a sha256 over 4 KiB plus one hash-table probe, both off the data path).
CHUNK_LOOKUP_NS = 150.0

_AD_HOT_MASK = np.int64(
    int(PteFlags.ACCESSED) | int(PteFlags.DIRTY) | int(PteFlags.HOT)
)
_CKPT_BASE_FLAGS = np.int64(
    int(PteFlags.PRESENT)
    | int(PteFlags.USER)
    | int(PteFlags.CXL)
    | int(PteFlags.COW)
    | int(PteFlags.PIN)
)


class CxlForkCheckpoint:
    """A process checkpoint resident in shared CXL memory."""

    def __init__(self, comm: str, fabric, heap: CxlHeap) -> None:
        self.comm = comm
        self.fabric = fabric
        self.heap = heap
        self.pagetable = PageTable()  # the checkpointed (CXL-resident) tree
        self.vma_leaves: list[VmaLeaf] = []
        self.data_frames = np.empty(0, dtype=np.int64)
        self.leaf_offsets: dict[int, int] = {}
        self.vma_leaf_offsets: list[int] = []
        self.regs_offset = 0
        self.global_offset = 0
        self.image_offset = 0
        self.present_pages = 0
        self.rebased = False
        self.source_node = ""
        self._deleted = False
        #: Content codes per PTE leaf (leaf index -> int64[PTES_PER_LEAF],
        #: NO_CODE where absent).  None when the image was sealed with
        #: dedup off; set by the seal and by replication materialize.
        self.chunk_codes: Optional[dict[int, np.ndarray]] = None
        #: Pages resolved to a chunk some *other* checkpoint already held
        #: (borrowed frames — shared, so not this image's resident bytes).
        self.shared_chunk_pages = 0
        #: Anonymous pages elided as the zero chunk (never stored at all).
        self.zero_elided_pages = 0

    # -- size accounting ---------------------------------------------------------

    @property
    def data_bytes(self) -> int:
        return self.present_pages * PAGE_SIZE

    @property
    def metadata_bytes(self) -> int:
        return self.heap.used_bytes

    @property
    def cxl_bytes(self) -> int:
        return self.data_bytes + self.metadata_bytes

    @property
    def resident_cxl_bytes(self) -> int:
        """Device bytes this image *added*: logical size minus the pages it
        shares from chunks other checkpoints already held."""
        return self.cxl_bytes - self.shared_chunk_pages * PAGE_SIZE

    def gather_chunk_codes(self, start_vpn: int, npages: int):
        """Content codes for ``npages`` vpns (None if sealed without dedup)."""
        if self.chunk_codes is None:
            return None
        out = np.zeros(npages, dtype=np.int64)
        vpn = start_vpn
        end = start_vpn + npages
        while vpn < end:
            leaf_index = vpn // PTES_PER_LEAF
            lo = vpn & (PTES_PER_LEAF - 1)
            hi = min(PTES_PER_LEAF, lo + (end - vpn))
            codes = self.chunk_codes.get(leaf_index)
            if codes is not None:
                out[vpn - start_vpn : vpn - start_vpn + (hi - lo)] = codes[lo:hi]
            vpn += hi - lo
        return out

    @property
    def max_vpn(self) -> int:
        if not self.vma_leaves:
            return 0
        return max(leaf.end_vpn for leaf in self.vma_leaves)

    def delete(self) -> None:
        """Release all CXL storage (object-store reclaim)."""
        if self._deleted:
            return
        self._deleted = True
        drop_plan(self)
        if self.data_frames.size:
            if self.chunk_codes is not None:
                # Drop this image's sharer from every indexed chunk before
                # the frame references go: entries with surviving sharers
                # keep their frames alive through the other owners' refs.
                index = getattr(self.fabric, "_chunk_index", None)
                if index is not None:
                    index.release(self.data_frames)
            self.fabric.put_frames(self.data_frames)
        self.heap.release()

    def verify_detached(self) -> None:
        """Assert no checkpointed PTE still references node-local memory."""
        for _, leaf in self.pagetable.leaves():
            present = (leaf.ptes & np.int64(int(PteFlags.PRESENT))) != 0
            if not np.any(present):
                continue
            on_cxl = (leaf.ptes[present] & np.int64(int(PteFlags.CXL))) != 0
            if not np.all(on_cxl):
                raise RebaseError(
                    "checkpointed PTE maps node-local memory — rebase failed"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CxlForkCheckpoint(comm={self.comm!r}, "
            f"pages={self.present_pages}, rebased={self.rebased})"
        )


def build_restore_plan(checkpoint: CxlForkCheckpoint) -> RestorePlan:
    """Memoize the restore inputs that are pure functions of the image.

    Everything here is exactly what a planless ``_restore_into`` computes
    per restore: the heap derefs, the verify frame set, the upper-table
    count.  Codec- and prefetcher-dependent fields fill lazily on first
    use (see :mod:`repro.rfork.restoreplan`).
    """
    plan = RestorePlan()
    plan.frames = checkpoint_frames(checkpoint)
    heap = checkpoint.heap
    attach = [
        (leaf_index, heap.deref(offset))
        for leaf_index, offset in checkpoint.leaf_offsets.items()
    ]
    plan.pt_attach = attach
    plan.leaf_indices = np.asarray([i for i, _ in attach], dtype=np.int64)
    plan.leaf_cxl_resident = np.asarray(
        [leaf.cxl_resident for _, leaf in attach], dtype=bool
    )
    plan.backing_frames = checkpoint.data_frames
    plan.upper_tables = PageTable.upper_tables_for(checkpoint.leaf_offsets)
    plan.naive_installed = sum(leaf.present_count() for _, leaf in attach)
    plan.vma_leaves = [heap.deref(offset) for offset in checkpoint.vma_leaf_offsets]
    plan.max_vpn = checkpoint.max_vpn
    return plan


class CxlFork(RemoteForkMechanism):
    """The paper's remote fork interface."""

    name = "cxlfork"
    supports_ghost_containers = True

    def __init__(
        self,
        *,
        codec: Optional[Codec] = None,
        prefetcher: Optional[DirtyPagePrefetcher] = None,
        checkpoint_file_pages: bool = True,
        naive_restore: bool = False,
    ) -> None:
        self.codec = codec or Codec()
        self.prefetcher = prefetcher or DirtyPagePrefetcher()
        #: Ablation (§4.1): when False, clean private file pages are left
        #: out of the checkpoint (CRIU-style) and the restored child
        #: faults them from the file system on the remote node.
        self.checkpoint_file_pages = checkpoint_file_pages
        #: Ablation (§4.2.1): when True, restore *copies* the checkpointed
        #: page-table leaves to local memory and re-installs every PTE
        #: instead of attaching the leaves — the "naive implementation"
        #: the paper measures at several milliseconds.
        self.naive_restore = naive_restore

    # -- checkpoint --------------------------------------------------------------

    def checkpoint(self, task: Task) -> tuple[CxlForkCheckpoint, CheckpointMetrics]:
        node = task.node
        fabric = node.fabric
        latency = fabric.latency
        metrics = CheckpointMetrics()
        span = TRACE.span("cxlfork.checkpoint", clock=node.clock, comm=task.comm)
        if span.recording:
            metrics.span = span
        task.freeze()
        ckpt: Optional[CxlForkCheckpoint] = None
        frame_chunks: list[np.ndarray] = []
        interner: Optional[ChunkInterner] = None
        try:
            ckpt = CxlForkCheckpoint(task.comm, fabric, CxlHeap(fabric, f"ckpt:{task.comm}"))
            ckpt.source_node = node.name
            rebaser = Rebaser(ckpt.heap)

            # Ablation: optionally leave clean private file pages out.
            skip_vpns = None
            if not self.checkpoint_file_pages:
                from repro.rfork.criu import CriuCxl

                skip_vpns = CriuCxl._file_clean_pages(task)

            # Content-addressed seal (repro.dedup): resolve every present
            # page's content code up front, then intern pages through the
            # pod's chunk index instead of unconditionally copying.
            code_map = None
            if DEDUP.active():
                index = fabric.chunk_index
                code_map, zero_elided = seal_codes(task, index)
                interner = ChunkInterner(index, fabric)
                ckpt.chunk_codes = {}
                ckpt.zero_elided_pages = zero_elided
                index.stats.zero_elided += zero_elided

            # 1. Copy data pages to CXL and build the rebased page table.
            base_flags = _CKPT_BASE_FLAGS
            if _mutation.active("drop-ckpt-cow"):
                # Seeded bug for the checker's own smoke test: without COW,
                # a child's write to a checkpoint-mapped page silently
                # no-ops instead of CoW-ing local (see repro.check.mutation).
                base_flags = base_flags & ~np.int64(int(PteFlags.COW))
            total_present = 0
            for leaf_index, leaf in task.mm.pagetable.leaves():
                present = (leaf.ptes & np.int64(int(PteFlags.PRESENT))) != 0
                if skip_vpns is not None and skip_vpns.size:
                    base = leaf_index * PTES_PER_LEAF
                    present &= ~mask_in_range(skip_vpns, base, PTES_PER_LEAF)
                count = int(np.count_nonzero(present))
                new_ptes = np.zeros(PTES_PER_LEAF, dtype=np.int64)
                if count:
                    if interner is None:
                        cxl_frames = fabric.alloc_frames(count)
                    else:
                        leaf_codes = code_map[leaf_index]
                        cxl_frames = interner.intern_leaf(leaf_codes[present])
                        # Record the *intended* codes PTE-aligned: restore
                        # and the oracle cross-check frames against them.
                        recorded = np.zeros(PTES_PER_LEAF, dtype=np.int64)
                        recorded[present] = leaf_codes[present]
                        ckpt.chunk_codes[leaf_index] = recorded
                    frame_chunks.append(cxl_frames)
                    preserved = leaf.ptes[present] & _AD_HOT_MASK
                    new_ptes[present] = (
                        (cxl_frames << np.int64(PTE_FRAME_SHIFT))
                        | base_flags
                        | preserved
                    )
                    total_present += count
                ckpt_leaf = PteLeaf(new_ptes, cxl_resident=True)
                ckpt.pagetable.install_leaf(leaf_index, ckpt_leaf)
                offset = rebaser.intern(ckpt_leaf, PAGE_SIZE)
                ckpt_leaf.backing_frame = int(offset)
                ckpt.leaf_offsets[leaf_index] = int(offset)
            ckpt.present_pages = total_present
            if frame_chunks:
                ckpt.data_frames = np.concatenate(frame_chunks)
            copied_pages = total_present
            if interner is not None:
                interner.finish()
                ckpt.shared_chunk_pages = interner.shared_pages
                # Shared pages are *not* copied — resolving to an existing
                # chunk is the entire density win — but every present page
                # pays the hash + index probe.
                copied_pages -= interner.shared_pages
                metrics.note("dedup_index", CHUNK_LOOKUP_NS * total_present)
            metrics.note(
                "data_copy",
                latency.copy_ns(copied_pages * PAGE_SIZE, src_cxl=False, dst_cxl=True),
            )
            metrics.note(
                "pagetable_copy",
                latency.copy_ns(
                    ckpt.pagetable.leaf_count * PAGE_SIZE, src_cxl=False, dst_cxl=True
                ),
            )

            # 2. Checkpoint the VMA tree leaves (paths serialized in place).
            vma_bytes = 0
            for leaf in task.mm.vmas.leaves():
                vmas = [
                    dc_replace(v, file_registered=False) if v.is_file_backed() else v
                    for v in leaf.vmas
                ]
                ckpt_leaf = VmaLeaf(vmas, cxl_resident=True)
                ckpt.vma_leaves.append(ckpt_leaf)
                size = sum(
                    VMA_STRUCT_BYTES + (len(v.path) if v.path else 0) for v in vmas
                )
                vma_bytes += size
                offset = rebaser.intern(ckpt_leaf, max(size, 1))
                ckpt_leaf.backing_frame = int(offset)
                ckpt.vma_leaf_offsets.append(int(offset))
            metrics.note(
                "vma_copy", latency.copy_ns(vma_bytes, src_cxl=False, dst_cxl=True)
            )

            # 3. Serialize global state (the only real serialization).
            fd_records = [FdRecord.capture(f).to_wire() for f in task.fdtable]
            ns_record = NamespaceRecord.capture(task).to_wire()
            blob, encode_ns = self.codec.encode_with_cost(
                {"fds": fd_records, "ns": ns_record, "comm": task.comm},
                nrecords=len(fd_records) + 1,
            )
            ckpt.global_offset = ckpt.heap.store(blob, len(blob))
            metrics.note("global_serialize", encode_ns)
            metrics.note(
                "global_copy", latency.copy_ns(len(blob), src_cxl=False, dst_cxl=True)
            )
            metrics.serialized_bytes = len(blob)

            # 4. Hardware context (raw copy).
            regs = RegsRecord.capture(task.regs)
            ckpt.regs_offset = ckpt.heap.store(regs, task.regs.serialized_size())
            metrics.note(
                "regs_copy",
                latency.copy_ns(task.regs.serialized_size(), src_cxl=False, dst_cxl=True),
            )

            # 5. Rebase: store the root image and verify closure.
            image = {
                "leaves": dict(ckpt.leaf_offsets),
                "vma_leaves": list(ckpt.vma_leaf_offsets),
                "regs": ckpt.regs_offset,
                "global": ckpt.global_offset,
            }
            ckpt.image_offset = ckpt.heap.store(image, 256)
            rebaser.verify_closed(
                roots=list(ckpt.pagetable._leaves.values()) + ckpt.vma_leaves,
                child_refs=lambda obj: [],
            )
            n_structs = ckpt.pagetable.leaf_count + len(ckpt.vma_leaves)
            metrics.note("rebase", n_structs * REBASE_FIXUP_NS)
            ckpt.rebased = True
            ckpt.verify_detached()

            metrics.cxl_bytes = ckpt.cxl_bytes
            # Advancing the clock is part of the operation: a crash alarm
            # armed inside the checkpoint window fires here, aborting us.
            node.clock.advance(metrics.latency_ns)
            # Seal: checksum every image frame.  Poison that landed during
            # the write (an alarm firing in the advance above) fails the
            # seal and the cleanup below tears the corrupt image down.
            if RAS.active():
                seal_checkpoint(ckpt, context="cxlfork.seal")
            if _mutation.active("flip-frame-byte") and ckpt.data_frames.size:
                # Seeded bug for the checker's smoke test: corrupt one
                # checkpointed frame *after* the seal — the restore-time
                # checksum verification must catch it (repro.check.mutation).
                fabric.device.frames.poison(ckpt.data_frames[:1])
        except BaseException:
            span.finish()  # failed checkpoints must not leave the span open
            # Crash consistency: an aborted checkpoint must leak nothing.
            # The frame chunk list (not ckpt.data_frames, which is only set
            # once all chunks are collected) covers partial allocations.
            # With dedup, the interner's index effects (fresh registrations,
            # adopted sharers) unwind first; the put below then drops the
            # one reference each interned frame carries (alloc or adopt).
            if interner is not None:
                interner.abort()
            if frame_chunks:
                fabric.put_frames(np.concatenate(frame_chunks))
            if ckpt is not None:
                ckpt.data_frames = np.empty(0, dtype=np.int64)
                ckpt._deleted = True
                ckpt.heap.release()
            raise
        finally:
            task.thaw()
        span.set(pages=ckpt.present_pages, cxl_bytes=ckpt.cxl_bytes)
        span.finish()
        node.log.emit(node.clock.now, "cxlfork_checkpoint", comm=task.comm,
                      pages=ckpt.present_pages)
        return ckpt, metrics

    # -- restore ------------------------------------------------------------------

    def restore(
        self,
        checkpoint: CxlForkCheckpoint,
        node: ComputeNode,
        *,
        container: Optional[Any] = None,
        policy: Optional[Any] = None,
    ) -> RestoreResult:
        if not checkpoint.rebased:
            raise RebaseError("cannot restore from a non-rebased checkpoint")
        plan = plan_for(checkpoint, node.fabric, build_restore_plan)
        if RAS.active():
            # Verify before spawning anything: a poisoned image must never
            # begin serving, and failing here leaves nothing to unwind.
            if plan is not None:
                verify_planned(
                    node.fabric.device.frames, plan, context="cxlfork.restore"
                )
            else:
                verify_checkpoint(checkpoint, context="cxlfork.restore")
        if policy is None:
            policy = MigrateOnWrite()
        kernel = node.kernel
        metrics = RestoreMetrics()
        span = TRACE.span(
            "cxlfork.restore", clock=node.clock,
            comm=checkpoint.comm, node=node.name, policy=policy.name,
        )
        if span.recording:
            metrics.span = span

        metrics.note("process_create", PROC_CREATE_NS)
        task = kernel.spawn_task(checkpoint.comm, container=container)
        try:
            result = self._restore_into(
                task, checkpoint, node, policy, metrics, plan
            )
            span.finish()
            return result
        except BaseException:
            # Unwind a partially built clone (e.g. OOM during prefetch) so
            # failed restores never leak frames.  If the node crashed
            # mid-restore, node.fail() already tore the task down.
            span.finish()
            if task.state is not TaskState.DEAD:
                kernel.exit_task(task)
            raise

    def _restore_into(
        self, task, checkpoint, node, policy, metrics, plan=None
    ) -> RestoreResult:
        kernel = node.kernel
        latency = node.fabric.latency

        # Global state: deserialize the small blob, redo fds and namespaces.
        # The decoded state and its (deterministic) decode cost memoize on
        # the plan, keyed by codec identity — a differently-configured
        # codec never serves another codec's decode.
        if plan is not None:
            if plan._codec_ref is not self.codec:
                blob = checkpoint.heap.deref(checkpoint.global_offset)
                state, decode_ns = self.codec.decode_with_cost(blob, nrecords=8)
                plan.global_state = state
                plan.global_decode_ns = decode_ns
                plan.ns_record = NamespaceRecord.from_wire(state["ns"])
                plan._codec_ref = self.codec
            state = plan.global_state
            decode_ns = plan.global_decode_ns
            ns_record = plan.ns_record
        else:
            blob = checkpoint.heap.deref(checkpoint.global_offset)
            state, decode_ns = self.codec.decode_with_cost(blob, nrecords=8)
            ns_record = NamespaceRecord.from_wire(state["ns"])
        metrics.note("global_deserialize", decode_ns)
        for wire in state["fds"]:
            record = FdRecord.from_wire(wire)
            entry = record.reopen()
            inode = node.rootfs.ensure(entry.path)
            task.fdtable.install(
                dc_replace(entry, inode=inode.ino)
            )
        metrics.note("fd_reopen", FD_REOPEN_NS * len(state["fds"]))
        task.namespaces = NamespaceSet.restore_into(
            {"pid": ns_record.pid_ns, "mnt": ns_record.mnt_ns}, task.namespaces
        )
        metrics.note("ns_restore", NS_RESTORE_NS)

        # Hardware context.
        regs: RegsRecord = checkpoint.heap.deref(checkpoint.regs_offset)
        task.regs = regs.restore_into()
        metrics.note(
            "regs_restore",
            latency.copy_ns(task.regs.serialized_size(), src_cxl=True, dst_cxl=False),
        )

        # Attach the checkpointed VMA tree leaves.
        if plan is not None:
            vma_leaves = plan.vma_leaves
            max_vpn = plan.max_vpn
        else:
            vma_leaves = [
                checkpoint.heap.deref(offset)
                for offset in checkpoint.vma_leaf_offsets
            ]
            max_vpn = checkpoint.max_vpn
        for leaf in vma_leaves:  # type: VmaLeaf
            task.mm.vmas.attach_leaf(leaf)
        if checkpoint.vma_leaves:
            task.mm.note_range_used(max_vpn, 0)
        metrics.note(
            "vma_attach", VMA_LEAF_ATTACH_NS * len(checkpoint.vma_leaf_offsets)
        )

        # Page tables: attach leaves (MoW) or leave empty (MoA/hybrid).
        task.mm.ckpt_backing = CheckpointBacking(
            checkpoint=checkpoint, policy=policy, holds_frame_refs=True
        )
        if plan is not None:
            pt_attach = plan.pt_attach
        else:
            pt_attach = [
                (leaf_index, checkpoint.heap.deref(offset))
                for leaf_index, offset in checkpoint.leaf_offsets.items()
            ]
        if self.naive_restore and policy.attach_leaves:
            # Ablation: reconstruct the page tables locally instead of
            # attaching the checkpointed leaves (§4.2.1's strawman).
            # The copies themselves stay live (A/D bits on the source
            # leaves mutate as children run); only the stable present
            # total memoizes.
            for leaf_index, leaf in pt_attach:  # type: (int, PteLeaf)
                task.mm.pagetable.install_leaf(leaf_index, PteLeaf(leaf.ptes.copy()))
                metrics.note(
                    "pt_copy", latency.page_copy_ns(src_cxl=True, dst_cxl=False)
                )
            if plan is not None:
                installed = plan.naive_installed
            else:
                installed = sum(leaf.present_count() for _, leaf in pt_attach)
            metrics.note("pt_reinstall", 120.0 * installed)
            uppers = (
                plan.upper_tables
                if plan is not None
                else task.mm.pagetable.upper_level_tables()
            )
            metrics.note("pt_upper_init", UPPER_TABLE_INIT_NS * uppers)
            if checkpoint.data_frames.size:
                node.fabric.get_frames(checkpoint.data_frames)
        elif policy.attach_leaves:
            for leaf_index, leaf in pt_attach:
                task.mm.pagetable.attach_leaf(leaf_index, leaf)
            metrics.note(
                "pt_attach", PTE_LEAF_ATTACH_NS * len(checkpoint.leaf_offsets)
            )
            uppers = (
                plan.upper_tables
                if plan is not None
                else task.mm.pagetable.upper_level_tables()
            )
            metrics.note("pt_upper_init", UPPER_TABLE_INIT_NS * uppers)
            if checkpoint.data_frames.size:
                node.fabric.get_frames(checkpoint.data_frames)
        else:
            # Only the root + upper levels exist; leaves fill in on faults.
            metrics.note("pt_upper_init", UPPER_TABLE_INIT_NS * 4)

        # Ablation (§4.3): synchronously prefetch the A-marked pages during
        # restore instead of fetching them on access.  The paper finds this
        # "generally delivers lower performance" — it trades tail latency
        # for fewer CXL faults.
        if getattr(policy, "sync_prefetch_hot", False):
            copied = self._sync_prefetch_hot(node, task, checkpoint)
            metrics.note(
                "sync_hot_prefetch",
                latency.copy_ns(copied * PAGE_SIZE, src_cxl=True, dst_cxl=False),
            )

        # Opportunistic dirty-page prefetch (off the critical path).  The
        # per-leaf dirty selections are stable post-seal (checkpoint PTEs
        # never carry WRITE), so they memoize on the plan, keyed by the
        # prefetcher's effectiveness; the per-child installs stay live.
        if policy.prefetch_dirty:
            specs = None
            if plan is not None:
                if plan.prefetch_effectiveness != self.prefetcher.effectiveness:
                    plan.prefetch_specs = self.prefetcher.dirty_specs(
                        checkpoint.pagetable
                    )
                    plan.prefetch_effectiveness = self.prefetcher.effectiveness
                specs = plan.prefetch_specs
            result = self.prefetcher.prefetch(
                kernel, task, checkpoint.pagetable, specs=specs
            )
            metrics.background_ns += result.background_ns
            metrics.prefetched_pages = result.pages
            if TRACE.enabled and result.pages:
                TRACE.add_span(
                    "cxlfork.prefetch_dirty", node.clock.now, result.background_ns,
                    clock=node.clock, pages=result.pages,
                )

        node.clock.advance(metrics.latency_ns)
        node.log.emit(node.clock.now, "cxlfork_restore", comm=checkpoint.comm,
                      node=node.name, policy=policy.name)
        return RestoreResult(task=task, metrics=metrics)

    @staticmethod
    def _sync_prefetch_hot(node, task, checkpoint) -> int:
        """Install local copies of all A-marked checkpoint pages now."""
        kernel = node.kernel
        hot_flags = np.int64(int(PteFlags.PRESENT) | int(PteFlags.ACCESSED))
        copied = 0
        for leaf_index, ckpt_leaf in checkpoint.pagetable.leaves():
            hot = (ckpt_leaf.ptes & hot_flags) == hot_flags
            count = int(np.count_nonzero(hot))
            if count == 0:
                continue
            child_leaf = task.mm.pagetable.ensure_leaf(leaf_index)
            unmapped = hot & ((child_leaf.ptes & np.int64(int(PteFlags.PRESENT))) == 0)
            count = int(np.count_nonzero(unmapped))
            if count == 0:
                continue
            frames = kernel.alloc_local_frames(task.mm, count)
            from repro.os.mm.pte import make_ptes
            from repro.os.mm.vma import VmaPerms

            # The prefetched copy is hardware-writable only where the VMA
            # is: A-marked pages include read-only library images, and a
            # writable PTE in a read-only mapping breaks protection.
            base = int(PteFlags.PRESENT | PteFlags.USER | PteFlags.ACCESSED)
            vpn0 = leaf_index * PTES_PER_LEAF
            ptes = make_ptes(frames, base)
            for pos, i in enumerate(np.nonzero(unmapped)[0]):
                vma = task.mm.vmas.find(vpn0 + int(i))
                if vma is not None and vma.perms & VmaPerms.WRITE:
                    ptes[pos] |= np.int64(int(PteFlags.WRITE))
            child_leaf.ptes[unmapped] = ptes
            copied += count
        return copied


__all__ = ["CxlFork", "CxlForkCheckpoint", "build_restore_plan"]
