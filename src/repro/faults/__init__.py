"""Deterministic fault injection and recovery policies.

The paper's §3.1 headline — checkpoints on shared CXL memory survive the
death of the node that wrote them — is only worth reproducing if the
reproduction can actually kill nodes at adversarial moments.  This package
injects faults *deterministically*: every fault site is driven by a named
:class:`~repro.sim.rng.RngStream` and scheduled on virtual clocks, so a
given seed replays bit-identically.

Fault model (see docs/RESILIENCE.md):

* **Node crash** — :meth:`FaultInjector.crash_at` arms a clock alarm that
  fires `node.fail()` at an exact virtual nanosecond, including in the
  middle of a synchronous checkpoint or restore.
* **Transient CXL allocation failure** — :meth:`FaultInjector.transient_oom`
  makes a frame pool throw :class:`~repro.cxl.allocator.OutOfMemoryError`
  for the next N allocations (or probabilistically).
* **Fabric degradation** — :meth:`FaultInjector.degrade_fabric` inflates the
  CXL round-trip latency for a window (a congested or retrained link).
* **Gray failure** — :meth:`FaultInjector.slow_node` multiplies a node's
  operation costs without killing it; failure detectors must tell slow
  from dead.
* **Memory poison** — :meth:`FaultInjector.poison_frame` /
  :meth:`FaultInjector.poison_range` flip deterministic frames to a
  POISONED state in a frame pool, silently (no exception at injection
  time), including mid-checkpoint/mid-replication via
  :meth:`FaultInjector.poison_at` clock alarms.  Detection, containment
  and repair live in :mod:`repro.ras`.

Recovery machinery lives in :mod:`repro.faults.recovery` (capped
exponential backoff with deterministic jitter) and pod-wide frame-leak
auditing in :mod:`repro.faults.audit`.
"""

from repro.faults.audit import PodAudit, audit_pod, expected_refcounts
from repro.faults.injector import (
    DegradationWindow,
    FaultInjector,
    InjectedCrash,
    TransientFaultHandle,
)
from repro.faults.recovery import RetryExhaustedError, RetryPolicy, call_with_retries

__all__ = [
    "FaultInjector",
    "InjectedCrash",
    "TransientFaultHandle",
    "DegradationWindow",
    "RetryPolicy",
    "RetryExhaustedError",
    "call_with_retries",
    "PodAudit",
    "audit_pod",
    "expected_refcounts",
]
