"""Pod-wide frame-leak auditing.

Builds the *expected* refcount of every frame by walking the live owners —
task page tables, checkpoints, checkpoint heaps, in-CXL files, pinned
fabric regions, per-node page caches — and cross-checks it against what
the frame pools actually hold (:meth:`FrameAllocator.audit`).  A crash at
any virtual-time point must leave this audit clean: that is the acceptance
invariant of the failure sweep.

Ownership rules mirror ``Kernel.exit_task`` exactly:

* a present PTE with the CXL flag holds one reference on its CXL frame,
  unless the task's checkpoint backing has ``holds_frame_refs=False``
  (Mitosis children pull from the parent's shadow without refs);
* a present PTE without the CXL flag holds one reference on its node's
  DRAM frame;
* a CXLfork checkpoint holds the allocation reference on its data frames
  and its metadata heap's backing frames;
* a Mitosis checkpoint holds the allocation reference on its shadow
  frames in the *parent* node's DRAM;
* CRIU checkpoints own nothing directly — their image files are owned by
  the shared :class:`~repro.os.fs.cxlfs.CxlFileSystem`, which is walked
  independently;
* page caches hold one reference per cached page; pinned fabric regions
  one per frame;
* dedup'd criu-cxl checkpoints hold one reference per adopted chunk frame
  (``chunk_frames``) — cxlfork adopted frames already ride in
  ``data_frames`` with multiplicity.

When a :class:`~repro.dedup.chunkindex.ChunkIndex` is in play the audit
additionally cross-checks its sharer census against the live checkpoints
(:meth:`ChunkIndex.audit`): every indexed frame's sharer count must equal
the number of live checkpoints listing it, and the code→frame /
frame→code maps must be exact inverses.

Quarantined pools (dead nodes) report clean: their memory died with the
node and stale references against them are no-ops by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.cxl.allocator import LeakReport
from repro.os.mm.pte import PTE_FRAME_SHIFT, PteFlags

if TYPE_CHECKING:  # pragma: no cover
    from repro.cxl.fabric import CxlFabric
    from repro.os.node import ComputeNode

_PRESENT = np.int64(int(PteFlags.PRESENT))
_CXL = np.int64(int(PteFlags.CXL))


def _bump(expected: dict, frames: np.ndarray, by: int = 1) -> None:
    for frame in frames:
        key = int(frame)
        expected[key] = expected.get(key, 0) + by


def _task_frame_refs(task) -> tuple[np.ndarray, np.ndarray]:
    """(cxl_frames, local_frames) referenced by one task's page table.

    Returns the frames with multiplicity — a frame mapped twice contributes
    twice — matching the references ``exit_task`` would drop.
    """
    cxl_chunks: list[np.ndarray] = []
    local_chunks: list[np.ndarray] = []
    for _, leaf in task.mm.pagetable.leaves():
        present = (leaf.ptes & _PRESENT) != 0
        if not np.any(present):
            continue
        frames = (leaf.ptes[present] >> np.int64(PTE_FRAME_SHIFT)).astype(np.int64)
        if leaf.cxl_resident:
            cxl_chunks.append(frames)
            continue
        on_cxl = (leaf.ptes[present] & _CXL) != 0
        if np.any(on_cxl):
            cxl_chunks.append(frames[on_cxl])
        local = frames[~on_cxl]
        if local.size:
            local_chunks.append(local)
    cxl = np.concatenate(cxl_chunks) if cxl_chunks else np.empty(0, dtype=np.int64)
    local = (
        np.concatenate(local_chunks) if local_chunks else np.empty(0, dtype=np.int64)
    )
    return cxl, local


def expected_refcounts(
    fabric: "CxlFabric",
    nodes: Iterable["ComputeNode"],
    *,
    cxlfs=None,
    checkpoints: Iterable = (),
    ghost_pools: Iterable = (),
) -> tuple[dict, dict]:
    """Build the owner-derived refcount model.

    Returns ``(cxl_expected, dram_expected)`` where ``cxl_expected`` maps
    CXL frame -> count and ``dram_expected`` maps node name -> (frame ->
    count) for that node's DRAM pool.
    """
    cxl: dict[int, int] = {}
    dram: dict[str, dict[int, int]] = {n.name: {} for n in nodes}

    # Pinned fabric regions (e.g. the porter object-store directory).
    for frames in fabric._regions.values():
        _bump(cxl, frames)

    # In-CXL file system (CRIU images and anything else written there).
    if cxlfs is not None:
        for path in cxlfs.listdir():
            _bump(cxl, cxlfs.stat(path).frames)

    # Checkpoints (duck-typed across the three mechanisms).
    for ckpt in checkpoints:
        if getattr(ckpt, "_deleted", False):
            continue
        data_frames = getattr(ckpt, "data_frames", None)
        if data_frames is not None and data_frames.size:
            _bump(cxl, data_frames)
        heap = getattr(ckpt, "heap", None)
        if heap is not None and heap.backing_frames.size:
            _bump(cxl, heap.backing_frames)
        shared_chunks = getattr(ckpt, "chunk_frames", None)
        if shared_chunks is not None and shared_chunks.size:
            _bump(cxl, shared_chunks)
        shadow = getattr(ckpt, "shadow_frames", None)
        if shadow is not None and shadow.size:
            parent = ckpt.parent_node
            if not parent.failed:
                _bump(dram.setdefault(parent.name, {}), shadow)

    # Ghost-container pools reserve each ghost's bare 512 KB from its
    # node's DRAM (porter deployments).
    for pool in ghost_pools:
        if pool.node.failed:
            continue
        pool_dram = dram.setdefault(pool.node.name, {})
        for ghost in pool._all:
            _bump(pool_dram, ghost.reserved_frames)

    # Live tasks: page-table mappings, per-node page caches.
    for node in nodes:
        node_dram = dram.setdefault(node.name, {})
        if node.failed:
            continue  # quarantined pool; kernel has no tasks anyway
        for cached, frames in node.pagecache._files.values():
            live = frames[cached]
            if live.size:
                _bump(node_dram, live)
        for task in node.kernel.tasks():
            cxl_frames, local_frames = _task_frame_refs(task)
            backing = task.mm.ckpt_backing
            holds = backing is None or backing.holds_frame_refs
            if cxl_frames.size and holds:
                _bump(cxl, cxl_frames)
            if local_frames.size:
                _bump(node_dram, local_frames)
    return cxl, dram


@dataclass
class PodAudit:
    """Leak reports for the CXL pool and every node's DRAM pool.

    ``dedup_mismatches`` lists chunk-index bookkeeping errors (sharer count
    vs live-checkpoint census, map asymmetry) — a non-empty list fails the
    audit exactly like a leaked frame.
    """

    reports: list[LeakReport] = field(default_factory=list)
    dedup_mismatches: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(r.clean for r in self.reports) and not self.dedup_mismatches

    @property
    def leaked_frames(self) -> int:
        return sum(r.leaked_frames for r in self.reports)

    def describe(self) -> str:
        if self.clean:
            return "audit clean: no leaked frames"
        parts = [r.describe() for r in self.reports if not r.clean]
        parts.extend(f"dedup: {m}" for m in self.dedup_mismatches)
        return "; ".join(parts)


def audit_pod(
    fabric: "CxlFabric",
    nodes: Iterable["ComputeNode"],
    *,
    cxlfs=None,
    checkpoints: Iterable = (),
    ghost_pools: Iterable = (),
    chunk_index=None,
) -> PodAudit:
    """Cross-check every pool's refcounts against the live-owner model.

    ``checkpoints`` must list every checkpoint the caller considers live
    (not yet deleted); anything holding frames that is not enumerated here
    shows up as a leak — which is the point.  ``chunk_index``, when given,
    has its sharer census audited against the same checkpoint list.
    """
    nodes = list(nodes)
    checkpoints = list(checkpoints)
    cxl_expected, dram_expected = expected_refcounts(
        fabric, nodes, cxlfs=cxlfs, checkpoints=checkpoints, ghost_pools=ghost_pools
    )
    audit = PodAudit()
    audit.reports.append(fabric.device.frames.audit(cxl_expected))
    for node in nodes:
        audit.reports.append(node.dram.audit(dram_expected.get(node.name, {})))
    if chunk_index is not None:
        audit.dedup_mismatches.extend(chunk_index.audit(checkpoints))
    return audit


__all__ = ["PodAudit", "audit_pod", "expected_refcounts"]
