"""The fault injector: schedules failures at deterministic virtual times.

All randomness flows through one named RNG stream (``faults``), so two runs
with the same root seed inject the same faults at the same virtual
nanoseconds.  Crashes ride on clock alarms (:meth:`repro.sim.Clock.at`),
which fire *during* the ``advance()`` that crosses their deadline — the
only way to interrupt a synchronous checkpoint/restore mid-flight in a
virtual-time simulation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cxl.allocator import FrameAllocator, OutOfMemoryError
from repro.os.kernel import NodeFailedError
from repro.sim.clock import ClockAlarm
from repro.sim.rng import RngStream, SeedSequenceFactory
from repro.telemetry import TRACE

if TYPE_CHECKING:  # pragma: no cover
    from repro.cxl.fabric import CxlFabric
    from repro.os.node import ComputeNode


class InjectedCrash(NodeFailedError):
    """A node crash injected by :class:`FaultInjector`.

    Subclasses :class:`NodeFailedError` so every existing handler for a
    dead node treats injected crashes identically to organic ones.
    """


class TransientFaultHandle:
    """An installed transient-allocation-failure hook; ``remove()`` to stop.

    Fails the next ``failures`` allocations outright, and after that each
    allocation independently with ``probability`` (if given), drawing from
    the injector's RNG stream so the failure pattern is seed-stable.
    """

    def __init__(
        self,
        pool: FrameAllocator,
        *,
        failures: int = 0,
        probability: Optional[float] = None,
        rng: Optional[RngStream] = None,
    ) -> None:
        if probability is not None and rng is None:
            raise ValueError("probabilistic faults need an RNG stream")
        self.pool = pool
        self.remaining = int(failures)
        self.probability = probability
        self.rng = rng
        self.injected = 0
        self._prev = pool.fault_hook
        self._removed = False
        pool.fault_hook = self

    def __call__(self, count: int) -> None:
        if self._prev is not None:
            self._prev(count)
        fire = False
        if self.remaining > 0:
            self.remaining -= 1
            fire = True
        elif self.probability is not None and self.rng.uniform() < self.probability:
            fire = True
        if fire:
            self.injected += 1
            TRACE.count("faults.transient_oom")
            raise OutOfMemoryError(self.pool, count)

    def remove(self) -> None:
        if self._removed:
            return
        self._removed = True
        if self.pool.fault_hook is self:
            self.pool.fault_hook = self._prev

    def __enter__(self) -> "TransientFaultHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.remove()


class DegradationWindow:
    """A fabric latency/bandwidth degradation in effect until ``end()``.

    Models a congested or retraining CXL link: the round-trip latency is
    multiplied by ``factor`` and copy bandwidths scale down with it (via
    :meth:`MemoryLatencyModel.with_cxl_latency`).
    """

    def __init__(self, fabric: "CxlFabric", factor: float) -> None:
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1.0: {factor}")
        self.fabric = fabric
        self.factor = factor
        self._saved = fabric.latency
        self._ended = False
        fabric.set_latency(
            self._saved.with_cxl_latency(self._saved.cxl_access_ns * factor)
        )
        TRACE.count("faults.degradation_start")

    def end(self) -> None:
        if self._ended:
            return
        self._ended = True
        self.fabric.set_latency(self._saved)
        TRACE.count("faults.degradation_end")

    def __enter__(self) -> "DegradationWindow":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class FaultInjector:
    """Schedules deterministic faults against a pod.

    One injector per experiment; it owns the ``faults`` RNG stream and
    tracks everything it armed so :meth:`cancel_all` restores a quiescent
    pod (alarms disarmed, hooks removed, degradations ended, slow nodes
    back to full speed).
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        rng: Optional[SeedSequenceFactory] = None,
    ) -> None:
        factory = rng if rng is not None else SeedSequenceFactory(seed)
        self.rng = factory.stream("faults")
        self._alarms: list[ClockAlarm] = []
        self._hooks: list[TransientFaultHandle] = []
        self._windows: list[DegradationWindow] = []
        self._slowed: list["ComputeNode"] = []

    # -- crashes ------------------------------------------------------------

    def crash_now(self, node: "ComputeNode") -> int:
        """Fail ``node`` immediately; returns processes killed.

        Raises :class:`InjectedCrash` *only* via :meth:`crash_at` — the
        immediate form returns normally so callers can keep orchestrating.
        """
        already = node.failed
        killed = node.fail()
        if not already:
            TRACE.count("faults.crash_injected")
            node.log.emit(node.clock.now, "fault_injected", fault="crash",
                          node=node.name)
        return killed

    def crash_at(
        self,
        node: "ComputeNode",
        deadline_ns: int,
        *,
        raising: bool = True,
    ) -> ClockAlarm:
        """Arm a crash of ``node`` at absolute virtual time ``deadline_ns``.

        The crash fires during whatever operation advances the node's clock
        across the deadline.  With ``raising`` (the default) the alarm then
        raises :class:`InjectedCrash`, aborting the in-flight operation the
        way a real kernel panic aborts the work the CPU was doing; crash-
        consistency cleanup in the aborted operation's handlers must leave
        zero leaked frames (the failure-sweep invariant).
        """

        def action() -> None:
            if node.failed:
                return
            node.fail()
            TRACE.count("faults.crash_injected")
            node.log.emit(node.clock.now, "fault_injected", fault="crash",
                          node=node.name, deadline=deadline_ns)
            if raising:
                raise InjectedCrash(
                    f"node {node.name!r} crashed at t={node.clock.now}ns "
                    "(injected)"
                )

        alarm = node.clock.at(deadline_ns, action)
        self._alarms.append(alarm)
        return alarm

    def crash_after(
        self, node: "ComputeNode", delta_ns: int, *, raising: bool = True
    ) -> ClockAlarm:
        """Arm a crash ``delta_ns`` virtual nanoseconds from now."""
        return self.crash_at(node, node.clock.now + int(delta_ns), raising=raising)

    # -- transient allocation failures --------------------------------------

    def transient_oom(
        self,
        pool: FrameAllocator,
        *,
        failures: int = 1,
        probability: Optional[float] = None,
    ) -> TransientFaultHandle:
        """Make ``pool`` fail its next ``failures`` allocations.

        With ``probability`` set, subsequent allocations also fail at that
        rate, drawn deterministically from the injector's stream.
        """
        handle = TransientFaultHandle(
            pool, failures=failures, probability=probability, rng=self.rng
        )
        self._hooks.append(handle)
        return handle

    # -- fabric degradation --------------------------------------------------

    def degrade_fabric(
        self, fabric: "CxlFabric", *, factor: float
    ) -> DegradationWindow:
        """Begin a latency/bandwidth degradation window on the fabric."""
        window = DegradationWindow(fabric, factor)
        self._windows.append(window)
        return window

    # -- gray failures --------------------------------------------------------

    def slow_node(self, node: "ComputeNode", factor: float) -> None:
        """Put ``node`` into gray failure: alive but ``factor``× slower."""
        if factor < 1.0:
            raise ValueError(f"slow factor must be >= 1.0: {factor}")
        node.slow_factor = float(factor)
        if node not in self._slowed:
            self._slowed.append(node)
        TRACE.count("faults.slow_node")
        node.log.emit(node.clock.now, "fault_injected", fault="slow",
                      node=node.name, factor=factor)

    def restore_node_speed(self, node: "ComputeNode") -> None:
        node.slow_factor = 1.0
        if node in self._slowed:
            self._slowed.remove(node)

    # -- memory corruption (RAS) ----------------------------------------------

    def poison_frame(self, pool: FrameAllocator, frame: int) -> int:
        """Flip one frame to POISONED; returns 1 if newly poisoned."""
        return self.poison_range(pool, [frame])

    def poison_range(self, pool: FrameAllocator, frames) -> int:
        """Poison a set of frames; returns how many were newly flagged.

        Detection is *not* here: the frames sit corrupted until a RAS
        checksum point (seal, restore, replication encode, demand fault)
        touches them — exactly the silent-corruption window real poison
        semantics exist to close.
        """
        newly = pool.poison(frames)
        if newly:
            TRACE.count("ras.poison_injected", newly)
        return newly

    def poison_random(
        self, pool: FrameAllocator, frames, rate: float
    ) -> "np.ndarray":
        """Poison a seed-deterministic ``rate`` fraction of ``frames``.

        At least one frame is hit for any positive rate (a sweep cell with
        poison "on" must actually inject).  Returns the chosen frames.
        """
        arr = np.atleast_1d(np.asarray(frames, dtype=np.int64))
        if arr.size == 0 or rate <= 0.0:
            return np.empty(0, dtype=np.int64)
        count = max(1, int(round(arr.size * min(rate, 1.0))))
        order = self.rng.permutation(arr.size)
        chosen = np.sort(arr[order[:count]])
        self.poison_range(pool, chosen)
        return chosen

    def poison_allocated(self, pool: FrameAllocator, count: int = 1) -> int:
        """Poison ``count`` deterministic frames among those now allocated.

        Used by timed poison (:meth:`poison_at`) landing mid-operation,
        when the caller cannot know which frames exist at the deadline.
        """
        candidates = sorted(pool.snapshot_refcounts())
        if not candidates:
            return 0
        order = self.rng.permutation(len(candidates))
        chosen = [candidates[int(i)] for i in order[: max(1, count)]]
        return self.poison_range(pool, chosen)

    def poison_at(
        self,
        clock,
        pool: FrameAllocator,
        deadline_ns: int,
        *,
        frames=None,
        count: int = 1,
    ) -> ClockAlarm:
        """Arm a poison event at absolute virtual time ``deadline_ns``.

        Fires during whatever operation advances ``clock`` across the
        deadline — mid-checkpoint or mid-replication corruption.  Unlike
        :meth:`crash_at` the alarm never raises: corruption is silent by
        nature; only a later checksum point surfaces it (as
        :class:`repro.exceptions.PoisonError`).
        """

        def action() -> None:
            if frames is not None:
                self.poison_range(pool, frames)
            else:
                self.poison_allocated(pool, count)

        alarm = clock.at(deadline_ns, action)
        self._alarms.append(alarm)
        return alarm

    # -- lifecycle -------------------------------------------------------------

    def cancel_all(self) -> None:
        """Disarm every pending fault and undo reversible ones."""
        for alarm in self._alarms:
            alarm.cancel()
        self._alarms.clear()
        for handle in self._hooks:
            handle.remove()
        self._hooks.clear()
        # LIFO: nested windows on one fabric each saved the latency they
        # observed at creation, so they must unwind innermost-first or the
        # outer window's end() would be overwritten by a *degraded* save,
        # leaking the degradation past the cancel.
        for window in reversed(self._windows):
            window.end()
        self._windows.clear()
        for node in list(self._slowed):
            self.restore_node_speed(node)


__all__ = [
    "FaultInjector",
    "InjectedCrash",
    "TransientFaultHandle",
    "DegradationWindow",
]
