"""Recovery policies: capped exponential backoff with deterministic jitter.

Used by the resilient remote-fork wrapper (transient CXL OOM during
restore) and by the CXLporter autoscaler (memory-pressure requeues).  The
jitter draws from a named :class:`~repro.sim.rng.RngStream` so retry
schedules are part of the deterministic replay, unlike wall-clock jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

from repro.sim.rng import RngStream
from repro.sim.units import MS
from repro.telemetry import TRACE


class RetryExhaustedError(RuntimeError):
    """All retry attempts failed; carries the last underlying error."""

    def __init__(self, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"operation failed after {attempts} attempts: {last}"
        )
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: ``min(cap, base * 2**attempt)`` ± jitter.

    ``jitter`` is the full relative width of the uniform jitter band: a
    delay ``d`` becomes ``d * (1 - jitter/2 + jitter * u)`` for a uniform
    ``u`` from the provided stream.  With no stream the delay is exact.
    """

    base_ns: int = int(1 * MS)
    cap_ns: int = int(64 * MS)
    max_attempts: int = 6
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.base_ns <= 0:
            raise ValueError(f"backoff base must be positive: {self.base_ns}")
        if self.cap_ns < self.base_ns:
            raise ValueError("backoff cap below base")
        if self.max_attempts < 1:
            raise ValueError(f"need at least one attempt: {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")

    def delay_ns(self, attempt: int, rng: Optional[RngStream] = None) -> int:
        """Backoff delay before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"negative attempt: {attempt}")
        exp = min(attempt, 62)  # keep 2**exp in int64 range
        delay = float(min(self.cap_ns, self.base_ns * (1 << exp)))
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 - self.jitter / 2.0 + self.jitter * rng.uniform()
        return max(1, int(round(delay)))


def call_with_retries(
    operation: Callable[[], object],
    *,
    policy: RetryPolicy,
    clock,
    rng: Optional[RngStream] = None,
    retry_on: Tuple[Type[BaseException], ...],
    label: str = "retry",
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
):
    """Run ``operation``, retrying ``retry_on`` errors with backoff.

    Each retry advances ``clock`` by the policy's (jittered) delay — the
    caller is *waiting* in virtual time.  Raises
    :class:`RetryExhaustedError` wrapping the final error once
    ``policy.max_attempts`` attempts have failed.  Errors outside
    ``retry_on`` propagate immediately (a dead node is not transient).
    """
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        try:
            return operation()
        except retry_on as exc:
            last = exc
            if attempt == policy.max_attempts - 1:
                break
            delay = policy.delay_ns(attempt, rng)
            TRACE.count(f"{label}.retries")
            if TRACE.enabled:
                TRACE.add_span(
                    f"{label}.backoff", clock.now, delay, clock=clock,
                    attempt=attempt, error=type(exc).__name__,
                )
            if on_retry is not None:
                on_retry(attempt, exc)
            clock.advance(delay)
    raise RetryExhaustedError(policy.max_attempts, last)


__all__ = ["RetryPolicy", "RetryExhaustedError", "call_with_retries"]
