"""Containers and ghost containers (§5, Fig. 6).

Creating a Docker container — network, namespaces, cgroups — costs ~130 ms
irrespective of the function deployed in it, and an *empty* configured
container occupies only 512 KB.  CXLporter pre-creates such **ghost
containers** and restores functions straight into them, eliminating the
creation cost from the critical path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.os.node import ComputeNode
from repro.os.proc.cgroup import Cgroup
from repro.os.proc.namespaces import MountNamespace, NamespaceSet, NetworkNamespace, PidNamespace
from repro.sim.units import KIB, MS
from repro.telemetry import TRACE

#: Container creation latency (network + namespaces + cgroups), §5 / Fig. 6.
CONTAINER_CREATE_NS = 130.0 * MS
#: Memory held by a bare configured container.
GHOST_CONTAINER_BYTES = 512 * KIB
#: Waking a ghost container through its control socket to issue a restore.
GHOST_TRIGGER_NS = 1.0 * MS

_container_ids = itertools.count(1)


@dataclass
class Container:
    """A sandbox on one node."""

    node: ComputeNode
    function_name: str
    container_id: int = field(default_factory=lambda: next(_container_ids))
    namespaces: NamespaceSet = field(default_factory=NamespaceSet)
    cgroup: Optional[Cgroup] = None
    is_ghost: bool = False
    destroyed: bool = False

    def __post_init__(self) -> None:
        if self.cgroup is None:
            self.cgroup = Cgroup(name=f"ctr{self.container_id}")

    @property
    def overhead_bytes(self) -> int:
        """Local memory the container itself holds (beyond its processes)."""
        return GHOST_CONTAINER_BYTES

    def destroy(self) -> None:
        self.destroyed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flavor = "ghost" if self.is_ghost else "full"
        return f"Container(id={self.container_id}, fn={self.function_name!r}, {flavor})"


class GhostContainer(Container):
    """An empty, pre-configured container awaiting a function restore."""

    def __init__(self, node: ComputeNode, function_name: str) -> None:
        super().__init__(node=node, function_name=function_name, is_ghost=True)
        self.occupied = False

    def trigger(self) -> float:
        """Wake the control socket; returns the latency to charge."""
        if self.occupied:
            raise RuntimeError(f"{self!r} already hosts a function")
        self.occupied = True
        return GHOST_TRIGGER_NS

    def release(self) -> None:
        """The hosted function exited; the ghost is reusable."""
        self.occupied = False


class ContainerFactory:
    """Creates containers on a node, charging creation time."""

    def __init__(self, node: ComputeNode) -> None:
        self.node = node

    def create(self, function_name: str, *, charge: bool = True) -> Container:
        """A full container, paying the ~130 ms creation cost."""
        with TRACE.span(
            "faas.container_create", clock=self.node.clock, function=function_name
        ):
            container = Container(
                node=self.node,
                function_name=function_name,
                namespaces=NamespaceSet(
                    pid=PidNamespace(name=f"{function_name}_pid"),
                    mnt=MountNamespace(name=f"{function_name}_mnt"),
                    net=NetworkNamespace(name=f"{function_name}_net"),
                ),
            )
            if charge:
                self.node.clock.advance(CONTAINER_CREATE_NS)
        return container

    def create_ghost(self, function_name: str, *, charge: bool = True) -> GhostContainer:
        """A ghost container (created off the critical path, usually)."""
        with TRACE.span(
            "faas.ghost_create", clock=self.node.clock, function=function_name
        ):
            ghost = GhostContainer(self.node, function_name)
            if charge:
                self.node.clock.advance(CONTAINER_CREATE_NS)
        return ghost


__all__ = [
    "Container",
    "GhostContainer",
    "ContainerFactory",
    "CONTAINER_CREATE_NS",
    "GHOST_CONTAINER_BYTES",
    "GHOST_TRIGGER_NS",
]
