"""The evaluation functions (Table 1) and their behavioural parameters.

Footprints and descriptions are the paper's (Table 1: FunctionBench CPU &
memory functions plus HTML/BFS/Bert from FaaSMem).  The behavioural
parameters — segment split, working-set fractions, re-access rates, init
latencies — are *synthetic calibrations*: the paper reports only aggregate
properties (Fig. 1: Init 72.2%, Read-only 23%, Read/Write 4.8% on average;
Fig. 6: state init 250-500 ms; §7.1: only BFS and Bert have working sets
exceeding the 64 MB L3), so per-function values are chosen to reproduce
those aggregates and the qualitative per-function behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import MIB, MS, bytes_to_pages


@dataclass(frozen=True)
class FunctionSpec:
    """One serverless function: size, layout fractions, behaviour."""

    name: str
    description: str
    footprint_mb: int
    #: Footprint split (sums to 1.0): initialization-only data, data only
    #: read during invocations, data written during invocations (Fig. 1).
    init_frac: float
    ro_frac: float
    rw_frac: float
    #: Fraction of the init segment that is file-backed (runtime + library
    #: images); the rest is anonymous (parsed configs, model weights, JIT).
    file_frac_of_init: float
    #: Cold-start state initialization latency (Fig. 6: 250-500 ms).
    state_init_ms: float
    #: Pure compute per invocation (no memory-system time).
    compute_ms: float
    #: Mean re-accesses per touched page per invocation (beyond first touch).
    reaccess_per_page: float
    #: Fraction of each segment touched per invocation.
    init_touch_frac: float
    ro_touch_frac: float
    rw_touch_frac: float
    #: Number of private file mappings (Python deps => hundreds of VMAs).
    lib_vma_count: int
    #: Open file descriptors the function holds.
    fd_count: int

    def __post_init__(self) -> None:
        total = self.init_frac + self.ro_frac + self.rw_frac
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: segment fractions sum to {total}, not 1")
        for field_name in ("init_touch_frac", "ro_touch_frac", "rw_touch_frac",
                           "file_frac_of_init"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {field_name}={value} outside [0, 1]")
        if self.footprint_mb <= 0:
            raise ValueError(f"{self.name}: footprint must be positive")

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_mb * MIB

    @property
    def footprint_pages(self) -> int:
        return bytes_to_pages(self.footprint_bytes)

    @property
    def state_init_ns(self) -> float:
        return self.state_init_ms * MS

    @property
    def compute_ns(self) -> float:
        return self.compute_ms * MS

    def touched_bytes_per_invocation(self) -> int:
        """Approximate per-invocation working set in bytes."""
        return int(
            self.footprint_bytes
            * (
                self.init_frac * self.init_touch_frac
                + self.ro_frac * self.ro_touch_frac
                + self.rw_frac * self.rw_touch_frac
            )
        )


def _spec(name, desc, mb, init, rw, file_init, init_ms, comp_ms, reacc,
          t_init, t_ro, t_rw, libs, fds) -> FunctionSpec:
    ro = round(1.0 - init - rw, 6)
    return FunctionSpec(
        name=name,
        description=desc,
        footprint_mb=mb,
        init_frac=init,
        ro_frac=ro,
        rw_frac=rw,
        file_frac_of_init=file_init,
        state_init_ms=init_ms,
        compute_ms=comp_ms,
        reaccess_per_page=reacc,
        init_touch_frac=t_init,
        ro_touch_frac=t_ro,
        rw_touch_frac=t_rw,
        lib_vma_count=libs,
        fd_count=fds,
    )


#: The ten functions of Table 1.
TABLE1: tuple = (
    _spec("float", "Sin, Cos, and Sqrt on floats", 24,
          0.80, 0.05, 0.35, 250.0, 4.0, 3.0, 0.06, 0.70, 0.90, 120, 12),
    _spec("linpack", "Linear algebra solver for matrices", 33,
          0.72, 0.06, 0.32, 260.0, 25.0, 8.0, 0.06, 0.75, 0.95, 130, 12),
    _spec("json", "JSON serialization & deserialization", 24,
          0.74, 0.05, 0.35, 250.0, 7.0, 3.0, 0.06, 0.70, 0.90, 125, 14),
    _spec("pyaes", "Python AES encryption of a string", 24,
          0.78, 0.04, 0.35, 255.0, 12.0, 4.0, 0.06, 0.70, 0.90, 120, 12),
    _spec("chameleon", "HTML table rendering", 27,
          0.75, 0.05, 0.33, 260.0, 9.0, 3.0, 0.07, 0.70, 0.90, 140, 16),
    _spec("html", "HTML web service", 256,
          0.82, 0.03, 0.28, 300.0, 15.0, 2.0, 0.04, 0.55, 0.90, 220, 24),
    _spec("cnn", "JPEG classification CNN", 265,
          0.75, 0.05, 0.25, 400.0, 90.0, 4.0, 0.05, 0.45, 0.90, 260, 24),
    _spec("rnn", "Generating natural language sentences", 190,
          0.85, 0.03, 0.25, 450.0, 12.0, 3.0, 0.04, 0.50, 0.90, 240, 24),
    _spec("bfs", "Breadth-first search", 125,
          0.45, 0.07, 0.22, 300.0, 45.0, 12.0, 0.08, 0.85, 0.90, 160, 16),
    _spec("bert", "BERT-based ML inference", 630,
          0.60, 0.05, 0.20, 500.0, 110.0, 5.0, 0.05, 0.85, 0.90, 320, 32),
)

_BY_NAME = {spec.name: spec for spec in TABLE1}


def get_function(name: str) -> FunctionSpec:
    """Look up a Table-1 function by name (case-insensitive)."""
    spec = _BY_NAME.get(name.lower())
    if spec is None:
        raise KeyError(f"unknown function {name!r}; known: {sorted(_BY_NAME)}")
    return spec


def function_names() -> list:
    """Table-1 function names, in table order."""
    return [spec.name for spec in TABLE1]


__all__ = ["FunctionSpec", "TABLE1", "get_function", "function_names"]
