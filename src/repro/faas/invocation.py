"""The invocation execution engine.

Running one invocation of a function against a (possibly just-restored)
process consists of:

1. **Touching the working set** — for each planned segment, a deterministic
   subset (the segment's ``touch_frac``) of pages is accessed; reads for
   INIT/READ_ONLY segments, writes for READ_WRITE.  This drives the kernel's
   vectorized fault path: CoW migrations, MoA copies, file faults, leaf CoW,
   and A/D-bit updates all happen here.
2. **Charging memory-access time** — first touches of pages whose data was
   not just copied (copies land in cache) miss the hardware caches and pay
   the tier's latency; re-references miss according to the working-set
   capacity model and pay the latency of whichever tier each page resides
   on after step 1.  This is where CXL-resident read-only data costs time.
3. **Compute** — the function's fixed CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.faas.profiles import MemoryPlan, Segment, SegmentRole
from repro.os.kernel import FaultStats
from repro.os.mm.faults import WARMING_KINDS, FaultKind
from repro.os.proc.task import Task
from repro.sim.units import PAGE_SIZE

#: Fault kinds that leave the page's data warm in the cache.  The
#: canonical set lives next to the FaultKind enum; FaultStats tallies it
#: incrementally as ``stats.warmed``, which pass 2 below reads directly.
_WARMING_KINDS = tuple(sorted(WARMING_KINDS, key=lambda k: k.value))


@dataclass
class InvocationResult:
    """Timing and behaviour of one invocation."""

    wall_ns: float = 0.0
    compute_ns: float = 0.0
    fault_ns: float = 0.0
    access_ns: float = 0.0
    fault_stats: FaultStats = field(default_factory=FaultStats)
    touched_pages: int = 0
    touched_local: int = 0
    touched_cxl: int = 0
    first_touch_misses: int = 0
    reaccess_misses: int = 0

    @property
    def cxl_fraction(self) -> float:
        total = self.touched_local + self.touched_cxl
        return self.touched_cxl / total if total else 0.0


#: Share of each invocation's working set that is the same every time (the
#: hot core A-bit tiering predicts); the rest is an input-dependent tail
#: that rotates with the invocation index.
STABLE_CORE_FRAC = 0.8
#: The tail rotates within a window this many times the tail size, so the
#: union of pages touched across many invocations stays bounded (Fig. 1:
#: most Init pages are *never* read in 128 invocations).
TAIL_WINDOW_FACTOR = 4


@lru_cache(maxsize=4096)
def _mask_core(npages: int, count: int, stable_frac: float):
    """Cached per-(segment, fraction) pieces: the stable-core mask and the
    tail window (positions the rotating tail draws from)."""
    mask = np.zeros(npages, dtype=bool)
    core = int(round(count * stable_frac))
    if core > 0:
        mask[np.linspace(0, npages - 1, core).astype(np.int64)] = True
    tail = count - int(np.count_nonzero(mask))
    window = np.empty(0, dtype=np.int64)
    if tail > 0:
        remaining = np.nonzero(~mask)[0]
        window = remaining[: min(remaining.size, tail * TAIL_WINDOW_FACTOR)]
    mask.setflags(write=False)
    window.setflags(write=False)
    return mask, tail, window


def touch_mask(
    npages: int,
    frac: float,
    invocation_index: int = 0,
    stable_frac: float = STABLE_CORE_FRAC,
) -> np.ndarray:
    """A deterministic boolean mask selecting ~``frac`` of ``npages``.

    ``stable_frac`` of the selection is identical across invocations (the
    hot working set the checkpointed A bits capture); the remainder rotates
    deterministically with ``invocation_index`` (each request's different
    input — the paper invokes each function "with a different input in each
    request", §2.2).

    The returned mask is **read-only**: it is a pure function of its
    arguments and cached, because scaled-out experiments replay the same
    few (segment, fraction, index) triples thousands of times across
    instances of the same function.
    """
    if npages <= 0:
        return np.zeros(0, dtype=bool)
    count = min(int(round(npages * frac)), npages)
    if count == 0:
        return np.zeros(npages, dtype=bool)
    return _touch_mask_cached(npages, count, invocation_index, stable_frac)


@lru_cache(maxsize=512)
def _touch_mask_cached(
    npages: int, count: int, invocation_index: int, stable_frac: float
) -> np.ndarray:
    core_mask, tail, window = _mask_core(npages, count, stable_frac)
    mask = core_mask.copy()
    n = window.size
    if tail > 0 and n > 0:
        # A coprime stride makes the picks a permutation prefix, so any two
        # invocations overlap only partially (different inputs share some
        # but not all of their tails).
        step = 1 + 2 * (invocation_index % 8)
        while _gcd(step, n) != 1:
            step += 2
        start = (invocation_index * 2654435761) % n
        picks = window[(start + np.arange(min(tail, n)) * step) % n]
        mask[picks] = True
    mask.setflags(write=False)
    return mask


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


class InvocationEngine:
    """Executes invocations on the simulated kernel + cache."""

    def run(
        self, task: Task, plan: MemoryPlan, invocation_index: int = 0
    ) -> InvocationResult:
        spec = plan.spec
        node = task.node
        kernel = task.kernel
        latency = node.fabric.latency
        result = InvocationResult()

        # Pass 1: drive faults / page-state transitions segment by segment.
        seg_masks: list[tuple[Segment, np.ndarray, FaultStats]] = []
        for seg in plan.segments:
            if not seg.placed:
                raise ValueError(f"segment {seg.label!r} was never placed")
            mask = touch_mask(seg.npages, seg.touch_frac, invocation_index)
            if not np.any(mask):
                continue
            write = seg.role is SegmentRole.READ_WRITE
            stats = kernel.access_range(
                task, seg.start_vpn, seg.npages, write=write, touched_mask=mask
            )
            result.fault_stats.merge(stats)
            seg_masks.append((seg, mask, stats))
        result.fault_ns = result.fault_stats.cost_ns

        # Pass 2: memory-access time from the post-fault page placement.
        # access_range already tallied each segment's touched pages in its
        # placement counters, so no mask re-scan is needed here.
        total_touched = sum(s.touched for _, _, s in seg_masks)
        result.touched_pages = total_touched
        ws_bytes = total_touched * PAGE_SIZE
        miss_frac = node.cache.rereference_miss_fraction(ws_bytes)

        # Shared-fabric contention inflates effective CXL access latency
        # (1.0 on an idle fabric; see repro.cxl.bandwidth).
        contention = node.fabric.contention_factor()
        access_ns = 0.0
        for seg, mask, stats in seg_masks:
            n_cxl = stats.touched_cxl
            n_local = stats.touched_local
            n_touched = n_cxl + n_local
            result.touched_local += n_local
            result.touched_cxl += n_cxl

            # First touches: pages just copied by a fault are cache-warm.
            warmed = stats.warmed
            cold_first = max(0, n_touched - warmed)
            frac_cxl = n_cxl / n_touched if n_touched else 0.0
            ft_cxl = cold_first * frac_cxl
            ft_local = cold_first - ft_cxl
            result.first_touch_misses += cold_first

            # Re-references miss per the cache capacity model.
            reaccesses = n_touched * spec.reaccess_per_page
            re_misses = reaccesses * miss_frac
            re_cxl = re_misses * frac_cxl
            re_local = re_misses - re_cxl
            result.reaccess_misses += int(re_misses)

            access_ns += (ft_cxl + re_cxl) * latency.access_ns(cxl=True) * contention
            access_ns += (ft_local + re_local) * latency.access_ns(cxl=False)

        result.access_ns = access_ns
        result.compute_ns = spec.compute_ns
        node.clock.advance(access_ns + result.compute_ns)
        result.wall_ns = result.fault_ns + result.access_ns + result.compute_ns
        return result


__all__ = ["InvocationEngine", "InvocationResult", "touch_mask"]
