"""Extension: FaaS workflows over CXL (§8, "CXLporter for FaaS Workflows").

The paper expects workflows of functions to benefit twice: each stage is
remote-forked on demand, and "the CXL fabric [can] accelerate
inter-function communication by minimizing data movement — e.g., by using
CXL-tailored RPC schemes or by extending CXLfork to provide shared-memory
semantics over CXL".

This module implements both transfer styles so they can be compared:

* ``copy`` — the conventional path: the producer serializes its output,
  the bytes cross the shared medium, the consumer deserializes into local
  memory (what network RPC / storage handoff costs).
* ``reference`` — pass-by-reference over CXL: the producer writes its
  output once into shared CXL memory (non-temporal stores) and hands the
  consumer a 64-byte reference; the consumer reads only the part of the
  payload it actually consumes, in place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.common import Pod
from repro.faas.workload import FunctionWorkload
from repro.rfork.cxlfork import CxlFork
from repro.serial.codec import Codec
from repro.sim.units import MIB, MS


class TransferMode(enum.Enum):
    """How one stage's output reaches the next stage."""

    COPY = "copy"
    REFERENCE = "reference"


@dataclass(frozen=True)
class WorkflowStage:
    """One function in a chain, with the payload it emits downstream."""

    function: str
    payload_out_mb: float = 1.0
    #: Fraction of the incoming payload the stage actually reads.
    consume_frac: float = 1.0

    def __post_init__(self) -> None:
        if self.payload_out_mb < 0:
            raise ValueError(f"negative payload: {self.payload_out_mb}")
        if not 0.0 <= self.consume_frac <= 1.0:
            raise ValueError(f"bad consume fraction: {self.consume_frac}")


@dataclass(frozen=True)
class Workflow:
    """An ordered chain of stages."""

    name: str
    stages: tuple

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a workflow needs at least one stage")


@dataclass
class StageResult:
    function: str
    node: str
    start_ms: float
    invoke_ms: float
    transfer_in_ms: float


@dataclass
class WorkflowResult:
    workflow: str
    mode: TransferMode
    stages: list = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return sum(s.start_ms + s.invoke_ms + s.transfer_in_ms for s in self.stages)

    @property
    def transfer_ms(self) -> float:
        return sum(s.transfer_in_ms for s in self.stages)


class WorkflowEngine:
    """Runs a workflow across a pod, one stage per (alternating) node."""

    def __init__(self, pod: Pod, *, codec: Optional[Codec] = None) -> None:
        self.pod = pod
        self.codec = codec or Codec()
        self.mechanism = CxlFork()
        self._checkpoints: dict[str, tuple] = {}

    def prepare(self, workflow: Workflow) -> None:
        """Season + checkpoint every distinct function in the workflow."""
        for stage in workflow.stages:
            if stage.function in self._checkpoints:
                continue
            wl = FunctionWorkload(stage.function)
            parent = wl.build_instance(self.pod.source)
            wl.season(parent)
            ckpt, _ = self.mechanism.checkpoint(parent.task)
            self.pod.source.kernel.exit_task(parent.task)
            self._checkpoints[stage.function] = (wl, parent, ckpt)

    def _transfer_cost_ns(
        self, mode: TransferMode, payload_bytes: int, consume_frac: float, node
    ) -> float:
        if payload_bytes == 0:
            return 0.0
        latency = node.fabric.latency
        if mode is TransferMode.COPY:
            encode = self.codec.costs.encode_ns(payload_bytes)
            to_medium = latency.copy_ns(payload_bytes, src_cxl=False, dst_cxl=True)
            from_medium = latency.copy_ns(payload_bytes, src_cxl=True, dst_cxl=False)
            decode = self.codec.costs.decode_ns(payload_bytes)
            return encode + to_medium + from_medium + decode
        # Pass-by-reference: producer already wrote into CXL (charged on
        # the producing side below); consumer reads what it consumes.
        consumed = int(payload_bytes * consume_frac)
        return latency.copy_ns(consumed, src_cxl=True, dst_cxl=False)

    def run(self, workflow: Workflow, mode: TransferMode) -> WorkflowResult:
        if not self._checkpoints:
            self.prepare(workflow)
        result = WorkflowResult(workflow=workflow.name, mode=mode)
        nodes = self.pod.nodes
        incoming_bytes = 0
        incoming_consume = 1.0
        for index, stage in enumerate(workflow.stages):
            node = nodes[index % len(nodes)]
            wl, parent, ckpt = self._checkpoints[stage.function]
            restored = self.mechanism.restore(ckpt, node)
            child = wl.placed_plan_for(parent, restored.task)
            transfer_ns = self._transfer_cost_ns(
                mode, incoming_bytes, incoming_consume, node
            )
            node.clock.advance(transfer_ns)
            invocation = wl.invoke(child)
            payload_bytes = int(stage.payload_out_mb * MIB)
            if mode is TransferMode.REFERENCE and payload_bytes:
                # Producer emits its output straight into CXL memory.
                emit_ns = node.fabric.latency.copy_ns(
                    payload_bytes, src_cxl=False, dst_cxl=True
                )
                node.clock.advance(emit_ns)
                transfer_out = emit_ns
            else:
                transfer_out = 0.0
            result.stages.append(
                StageResult(
                    function=stage.function,
                    node=node.name,
                    start_ms=restored.metrics.latency_ns / MS,
                    invoke_ms=(invocation.wall_ns + transfer_out) / MS,
                    transfer_in_ms=transfer_ns / MS,
                )
            )
            node.kernel.exit_task(child.task)
            incoming_bytes = payload_bytes
            incoming_consume = (
                workflow.stages[index + 1].consume_frac
                if index + 1 < len(workflow.stages)
                else 1.0
            )
        return result


__all__ = [
    "TransferMode",
    "WorkflowStage",
    "Workflow",
    "WorkflowEngine",
    "WorkflowResult",
    "StageResult",
]
