"""Per-function latency tracking against Service-Level Objectives.

CXLporter monitors tail and average latency per function; when they
approach the SLO it promotes the function from migrate-on-write to hybrid
tiering (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class SloTracker:
    """Sliding-window latency tracker for one function."""

    function: str
    slo_ns: float
    window: int = 64
    _samples: list = field(default_factory=list)

    def record(self, latency_ns: float) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self._samples.append(latency_ns)
        if len(self._samples) > self.window:
            del self._samples[: len(self._samples) - self.window]

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> Optional[float]:
        if not self._samples:
            return None
        return float(np.percentile(self._samples, q))

    def mean(self) -> Optional[float]:
        if not self._samples:
            return None
        return float(np.mean(self._samples))

    def violating(self, *, margin: float = 0.9) -> bool:
        """True when latency is close to or over the SLO (§5).

        ``margin`` scales the SLO: 0.9 means "within 10% of the objective
        counts as close".  Uses P95 of the sliding window so a short burst
        of slow requests triggers promotion.
        """
        if len(self._samples) < 8:
            return False
        p95 = self.percentile(95)
        mean = self.mean()
        return p95 >= self.slo_ns * margin or mean >= self.slo_ns * margin


__all__ = ["SloTracker"]
