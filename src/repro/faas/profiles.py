"""Address-space plans: from a :class:`FunctionSpec` to concrete segments.

A function instance's memory is laid out as:

* **library mappings** — ``lib_vma_count`` private file-backed VMAs (the
  Python runtime and its dependencies; §4.2.1 notes serverless functions
  carry *hundreds* of these).  They are initialization state: rarely touched
  during invocations.
* **anonymous init data** — parsed configs, JIT artifacts, one-time setup.
* **read-only data** — model weights, graphs, lookup tables read by every
  invocation.
* **read/write data** — buffers written during invocations.

The plan records each segment's role and per-invocation touch fraction;
virtual page numbers are assigned when the plan is *placed* into a task, and
are identical for every clone of that instance (checkpoints preserve the
address-space layout).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.faas.functions import FunctionSpec


class SegmentRole(enum.Enum):
    """Fig. 1's footprint categories."""

    INIT = "init"
    READ_ONLY = "read_only"
    READ_WRITE = "read_write"


class SegmentKind(enum.Enum):
    FILE = "file"
    ANON = "anon"


@dataclass(frozen=True)
class Segment:
    """One planned (and possibly placed) memory segment."""

    label: str
    role: SegmentRole
    kind: SegmentKind
    npages: int
    touch_frac: float
    path: Optional[str] = None
    #: Assigned when the plan is placed into an address space.
    start_vpn: Optional[int] = None

    def __post_init__(self) -> None:
        if self.npages <= 0:
            raise ValueError(f"segment {self.label!r} needs pages: {self.npages}")
        if not 0.0 <= self.touch_frac <= 1.0:
            raise ValueError(f"segment {self.label!r}: bad touch_frac {self.touch_frac}")
        if self.kind is SegmentKind.FILE and not self.path:
            raise ValueError(f"file segment {self.label!r} needs a path")

    @property
    def placed(self) -> bool:
        return self.start_vpn is not None

    def at(self, start_vpn: int) -> "Segment":
        return replace(self, start_vpn=start_vpn)


@dataclass(frozen=True)
class MemoryPlan:
    """The full segment list for one function."""

    spec: FunctionSpec
    segments: tuple

    def total_pages(self) -> int:
        return sum(seg.npages for seg in self.segments)

    def by_role(self, role: SegmentRole) -> list:
        return [seg for seg in self.segments if seg.role is role]

    def pages_by_role(self, role: SegmentRole) -> int:
        return sum(seg.npages for seg in self.by_role(role))

    def file_pages(self) -> int:
        return sum(s.npages for s in self.segments if s.kind is SegmentKind.FILE)


def build_plan(spec: FunctionSpec) -> MemoryPlan:
    """Construct the (unplaced) segment plan for a function."""
    total_pages = spec.footprint_pages
    init_pages = int(round(total_pages * spec.init_frac))
    rw_pages = max(1, int(round(total_pages * spec.rw_frac)))
    ro_pages = max(1, total_pages - init_pages - rw_pages)

    lib_pages_total = int(round(init_pages * spec.file_frac_of_init))
    anon_init_pages = max(1, init_pages - lib_pages_total)

    segments: list[Segment] = []
    if lib_pages_total > 0 and spec.lib_vma_count > 0:
        per_lib = max(1, lib_pages_total // spec.lib_vma_count)
        remaining = lib_pages_total
        index = 0
        while remaining > 0:
            npages = min(per_lib, remaining)
            # The last mapping absorbs the remainder so totals are exact.
            if remaining - npages < per_lib:
                npages = remaining
            segments.append(
                Segment(
                    label=f"lib{index}",
                    role=SegmentRole.INIT,
                    kind=SegmentKind.FILE,
                    npages=npages,
                    touch_frac=spec.init_touch_frac,
                    path=f"/opt/runtime/{spec.name}/lib{index}.so",
                )
            )
            remaining -= npages
            index += 1
    segments.append(
        Segment(
            label="init_data",
            role=SegmentRole.INIT,
            kind=SegmentKind.ANON,
            npages=anon_init_pages,
            touch_frac=spec.init_touch_frac,
        )
    )
    segments.append(
        Segment(
            label="ro_data",
            role=SegmentRole.READ_ONLY,
            kind=SegmentKind.ANON,
            npages=ro_pages,
            touch_frac=spec.ro_touch_frac,
        )
    )
    segments.append(
        Segment(
            label="rw_data",
            role=SegmentRole.READ_WRITE,
            kind=SegmentKind.ANON,
            npages=rw_pages,
            touch_frac=spec.rw_touch_frac,
        )
    )
    return MemoryPlan(spec=spec, segments=tuple(segments))


__all__ = ["Segment", "SegmentKind", "SegmentRole", "MemoryPlan", "build_plan"]
