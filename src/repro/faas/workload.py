"""Building and exercising function instances.

:class:`FunctionWorkload` owns one function's plan and knows how to:

* **build** a fresh instance on a node (cold start: map libraries through
  the page cache, populate anonymous segments, open descriptors, charge the
  state-initialization latency);
* **season** an instance the way CXLporter does before checkpointing
  (§5: clear A/D bits after the first invocation, run it warm so the
  steady-state access pattern lands in the page-table bits);
* hand a :class:`~repro.rfork.coldstart.Builder` to the cold-start
  mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faas.functions import FunctionSpec, get_function
from repro.faas.invocation import InvocationEngine, InvocationResult
from repro.faas.profiles import MemoryPlan, SegmentKind, build_plan
from repro.os.node import ComputeNode
from repro.os.proc.task import Task
from repro.telemetry import TRACE
from repro.tiering.hotness import reset_access_bits


@dataclass
class FunctionInstance:
    """A built (or restored) function process plus its placed plan."""

    task: Task
    plan: MemoryPlan
    spec: FunctionSpec
    #: How many invocations this instance has served (selects each
    #: invocation's input-dependent working-set tail).
    invocations: int = 0

    @property
    def node(self) -> ComputeNode:
        return self.task.node


class FunctionWorkload:
    """One Table-1 function: builder + invocation driver."""

    #: Spacing between instances' invocation-index sequences, so each clone
    #: sees its own input-dependent working-set tails.
    _INSTANCE_STRIDE = 17

    def __init__(self, spec: "FunctionSpec | str") -> None:
        if isinstance(spec, str):
            spec = get_function(spec)
        self.spec = spec
        self.plan = build_plan(spec)
        self.engine = InvocationEngine()
        self._instance_serial = 0

    def _next_invocation_base(self) -> int:
        self._instance_serial += 1
        return self._instance_serial * self._INSTANCE_STRIDE

    # -- building ---------------------------------------------------------------

    def build_instance(
        self,
        node: ComputeNode,
        *,
        container: Optional[object] = None,
        charge: bool = True,
    ) -> FunctionInstance:
        """Cold-build the function on ``node``; charges state-init time."""
        kernel = node.kernel
        span = TRACE.span(
            "faas.build_instance", clock=node.clock, function=self.spec.name
        )
        with span:
            task = kernel.spawn_task(self.spec.name, container=container)
            placed = []
            try:
                for seg in self.plan.segments:
                    if seg.kind is SegmentKind.FILE:
                        vma = kernel.map_file_region(
                            task, seg.path, seg.npages, label=seg.label, populate=True
                        )
                    else:
                        vma = kernel.map_anon_region(
                            task, seg.npages, label=seg.label, populate=True
                        )
                    placed.append(seg.at(vma.start_vpn))
            except BaseException:
                kernel.exit_task(task)  # half-built instances must not leak
                raise
            for i in range(self.spec.fd_count):
                path = f"/var/run/{self.spec.name}/fd{i}"
                inode = node.rootfs.ensure(path)
                task.fdtable.open(path, inode=inode.ino)
            if charge:
                node.clock.advance(self.spec.state_init_ns)
        plan = MemoryPlan(spec=self.spec, segments=tuple(placed))
        return FunctionInstance(
            task=task,
            plan=plan,
            spec=self.spec,
            invocations=self._next_invocation_base(),
        )

    def placed_plan_for(self, instance: FunctionInstance, task: Task) -> FunctionInstance:
        """Wrap a clone of ``instance`` (same layout) as a new instance.

        The clone serves different requests than its parent, so it gets a
        fresh invocation-index base (fresh working-set tails).
        """
        return self.instance_from_plan(instance.plan, task)

    def instance_from_plan(self, plan: MemoryPlan, task: Task) -> FunctionInstance:
        """Wrap a restored task whose layout matches an existing plan."""
        return FunctionInstance(
            task=task,
            plan=plan,
            spec=self.spec,
            invocations=self._next_invocation_base(),
        )

    def builder(self):
        """A :class:`~repro.rfork.coldstart.Builder` for this function.

        The returned callable also stores the last built instance on
        ``builder.last_instance`` so callers can retrieve the placed plan.
        """

        def build(node: ComputeNode, container) -> tuple:
            instance = self.build_instance(node, container=container, charge=True)
            build.last_instance = instance
            return instance.task, self.spec.state_init_ns

        build.last_instance = None
        return build

    # -- seasoning (CXLporter's checkpoint protocol, §5) ---------------------------

    def season(
        self,
        instance: FunctionInstance,
        *,
        warm_invocations: int = 3,
    ) -> InvocationResult:
        """Reach the steady state CXLporter checkpoints from.

        Clears the A/D bits set during initialization, then runs warm
        invocations so the bits reflect the invocation-time access pattern
        (hot read-only pages get A; written pages get A+D).  Returns the
        last invocation's result.
        """
        if warm_invocations < 1:
            raise ValueError("need at least one warm invocation")
        node = instance.node
        node.clock.advance(
            reset_access_bits(instance.task.mm.pagetable, clear_dirty=True)
        )
        result = None
        for _ in range(warm_invocations):
            result = self.invoke(instance)
        return result

    # -- invoking --------------------------------------------------------------------

    def invoke(self, instance: FunctionInstance) -> InvocationResult:
        """Run one invocation."""
        with TRACE.span(
            "faas.invoke", clock=instance.node.clock, function=self.spec.name
        ) as span:
            result = self.engine.run(instance.task, instance.plan, instance.invocations)
            instance.invocations += 1
            if span.recording:
                span.set(faults=result.fault_stats.total_faults)
        return result


__all__ = ["FunctionWorkload", "FunctionInstance"]
