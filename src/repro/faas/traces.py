"""Azure-shaped invocation traces (§6.1).

The paper replays Azure Functions production traces (Shahrad et al. 2020)
at ~150 RPS.  We cannot ship those traces, so we generate arrivals with the
properties the paper's experiments depend on:

* heavy-tailed popularity — a few functions receive most invocations;
* burstiness — each function alternates calm and burst phases (a two-state
  modulated Poisson process), because CXLporter's value shows up exactly
  when bursts force rapid scale-out (§7.2 "bursty functions");
* determinism — a seed fully fixes the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.faas.functions import function_names
from repro.sim.rng import SeedSequenceFactory
from repro.sim.units import SEC


@dataclass(frozen=True)
class Request:
    """One function invocation request."""

    when: int  # arrival time, ns
    function: str
    request_id: int


@dataclass
class TraceConfig:
    """Shape of the synthetic Azure-like trace."""

    total_rps: float = 150.0
    duration_s: float = 60.0
    #: Zipf-ish popularity skew across functions (1.0 = proportional decay).
    popularity_skew: float = 1.0
    #: Mean calm/burst phase lengths.
    calm_mean_s: float = 4.0
    burst_mean_s: float = 1.0
    #: Rate multiplier during a burst phase.
    burst_factor: float = 6.0
    seed: int = 42
    functions: Optional[list] = None


def popularity_weights(names: list, skew: float) -> np.ndarray:
    """Zipf-like weights, normalized."""
    ranks = np.arange(1, len(names) + 1, dtype=np.float64)
    weights = 1.0 / ranks**skew
    return weights / weights.sum()


def generate_trace(config: TraceConfig) -> list:
    """A time-sorted list of :class:`Request`."""
    names = list(config.functions or function_names())
    weights = popularity_weights(names, config.popularity_skew)
    seeds = SeedSequenceFactory(config.seed)
    horizon_ns = int(config.duration_s * SEC)

    # Each function gets an independent modulated Poisson process whose
    # *average* rate matches its popularity share of the total RPS.
    requests: list[Request] = []
    request_counter = 0
    for name, weight in zip(names, weights):
        stream = seeds.stream(f"trace:{name}")
        base_rate = config.total_rps * float(weight)  # requests/second
        # Average rate across phases: solve calm rate so the mixture hits
        # base_rate given the burst factor and phase durations.
        calm_share = config.calm_mean_s / (config.calm_mean_s + config.burst_mean_s)
        mean_factor = calm_share + (1 - calm_share) * config.burst_factor
        calm_rate = base_rate / mean_factor
        now = 0.0
        in_burst = False
        phase_end = stream.exponential(config.calm_mean_s)
        while now < config.duration_s:
            rate = calm_rate * (config.burst_factor if in_burst else 1.0)
            if rate <= 0:
                break
            gap = stream.exponential(1.0 / rate)
            now += gap
            while now >= phase_end:
                in_burst = not in_burst
                mean = config.burst_mean_s if in_burst else config.calm_mean_s
                phase_end += stream.exponential(mean)
            if now < config.duration_s:
                requests.append(
                    Request(
                        when=int(now * SEC),
                        function=name,
                        request_id=request_counter,
                    )
                )
                request_counter += 1
    requests.sort(key=lambda r: (r.when, r.request_id))
    return requests


def trace_stats(requests: list) -> dict:
    """Aggregate properties (used by tests and reports)."""
    if not requests:
        return {"count": 0, "rps": 0.0, "per_function": {}}
    span_s = max(r.when for r in requests) / SEC or 1.0
    per_function: dict[str, int] = {}
    for request in requests:
        per_function[request.function] = per_function.get(request.function, 0) + 1
    return {
        "count": len(requests),
        "rps": len(requests) / span_s,
        "per_function": per_function,
    }


__all__ = ["Request", "TraceConfig", "generate_trace", "trace_stats",
           "popularity_weights"]
