"""Serverless substrate: functions, containers, runtime, traces.

:data:`~repro.faas.functions.TABLE1` carries the paper's ten evaluation
functions with their measured footprints; :mod:`repro.faas.profiles` turns a
spec into a concrete address-space plan (libraries, init data, read-only
data, read/write data); :mod:`repro.faas.invocation` executes invocations
against the simulated kernel, producing faults, cache misses, and virtual
time.
"""

from repro.faas.container import Container, ContainerFactory, GhostContainer
from repro.faas.functions import TABLE1, FunctionSpec, get_function, function_names
from repro.faas.invocation import InvocationEngine, InvocationResult
from repro.faas.profiles import MemoryPlan, Segment, SegmentRole, build_plan
from repro.faas.workload import FunctionWorkload

__all__ = [
    "Container",
    "ContainerFactory",
    "GhostContainer",
    "TABLE1",
    "FunctionSpec",
    "get_function",
    "function_names",
    "InvocationEngine",
    "InvocationResult",
    "MemoryPlan",
    "Segment",
    "SegmentRole",
    "build_plan",
    "FunctionWorkload",
]
