"""Plain-text and markdown table rendering."""

from __future__ import annotations

from typing import Iterable


def format_table(
    headers: list,
    rows: Iterable,
    *,
    markdown: bool = False,
    float_format: str = ".2f",
) -> str:
    """Render rows of cells as an aligned text (or markdown) table."""
    rendered_rows = []
    for row in rows:
        rendered_rows.append(
            [
                format(cell, float_format) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        if markdown:
            return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line([str(h) for h in headers])]
    if markdown:
        out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    else:
        out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


__all__ = ["format_table"]
