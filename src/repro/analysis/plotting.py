"""Terminal plotting: ASCII bar charts and line series for the figures.

The experiments print tables by default; these helpers render the same
data approximately the way the paper's figures look — grouped bars per
function (Figs. 1, 7, 8, 10) and per-function line series over a swept
parameter (Fig. 9) — without any plotting dependency.
"""

from __future__ import annotations


#: Default bar-drawing width in characters.
BAR_WIDTH = 44


def ascii_bar_chart(
    groups: "list[tuple[str, dict]]",
    *,
    width: int = BAR_WIDTH,
    unit: str = "",
    log_note: bool = False,
) -> str:
    """Grouped horizontal bars.

    ``groups`` is ``[(group_label, {series_label: value, ...}), ...]`` —
    e.g. one group per function with one bar per mechanism.  Bars are
    scaled to the global maximum.
    """
    if not groups:
        return "(no data)"
    peak = max(
        (value for _, series in groups for value in series.values() if value > 0),
        default=1.0,
    )
    series_width = max(
        (len(label) for _, series in groups for label in series), default=4
    )
    lines = []
    if log_note:
        lines.append(f"(bars scaled linearly to max={peak:.3g}{unit})")
    for group_label, series in groups:
        lines.append(f"{group_label}")
        for label, value in series.items():
            filled = int(round(width * value / peak)) if peak else 0
            bar = "█" * max(filled, 1 if value > 0 else 0)
            lines.append(
                f"  {label:<{series_width}} |{bar:<{width}}| {value:.2f}{unit}"
            )
    return "\n".join(lines)


def ascii_series(
    xs: "list[float]",
    series: "dict[str, list[float]]",
    *,
    width: int = 56,
    height: int = 12,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Several y-series over shared x values, plotted as characters."""
    if not xs or not series:
        return "(no data)"
    all_ys = [y for ys in series.values() for y in ys]
    lo, hi = min(all_ys), max(all_ys)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    x_lo, x_hi = min(xs), max(xs)
    span = (x_hi - x_lo) or 1.0
    for index, (name, ys) in enumerate(series.items()):
        mark = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            col = int(round((x - x_lo) / span * (width - 1)))
            row = int(round((hi - y) / (hi - lo) * (height - 1)))
            grid[row][col] = mark
    lines = [f"{hi:8.2f} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{lo:8.2f} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + "└" + "─" * width)
    lines.append(
        " " * 10 + f"{x_lo:<10.3g}{x_label:^{max(width - 20, 0)}}{x_hi:>10.3g}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    if y_label:
        lines.insert(0, f"{y_label}")
    return "\n".join(lines)


__all__ = ["ascii_bar_chart", "ascii_series", "BAR_WIDTH"]
