"""One-shot reproduction report.

``generate_report()`` runs every experiment (optionally at reduced scale)
and emits a markdown document with the measured tables and headline
ratios — the machine-generated companion to the hand-annotated
EXPERIMENTS.md.
"""

from __future__ import annotations

import io
import time


def _section(out, title: str) -> None:
    out.write(f"\n## {title}\n\n")


def format_phase_breakdown(tracer=None, *, names=None) -> str:
    """Per-phase cost table for the spans recorded on ``tracer``.

    Rolls the tracer's top-level spans into per-operation groups with each
    direct-child phase's total, mean, and share (``python -m repro trace``
    prints this after running an experiment).  ``names`` restricts the table
    to specific top-level span names.
    """
    from repro.telemetry import Breakdown, get_tracer

    tracer = tracer if tracer is not None else get_tracer()
    breakdown = Breakdown.from_tracer(tracer, names=names)
    if not breakdown.groups:
        return "(no spans recorded — was tracing enabled?)"
    table = breakdown.format_table()
    ras = format_ras_counters(tracer)
    if ras:
        table = f"{table}\n\n{ras}"
    return table


def format_ras_counters(tracer=None) -> str:
    """Memory-integrity tally for a traced run (empty when RAS never ran).

    Surfaces the ``ras.*`` counters — poison injected/detected, repairs by
    ladder rung, frames offlined, scrub traffic — next to the phase
    breakdown, so a traced corruption run shows *what the RAS layer did*
    alongside where the nanoseconds went.
    """
    from repro.telemetry import get_tracer

    tracer = tracer if tracer is not None else get_tracer()
    counters = [
        c for name, c in sorted(tracer.metrics.counters.items())
        if name.startswith("ras.") and c.value
    ]
    if not counters:
        return ""
    lines = ["memory integrity (RAS counters)"]
    lines.append(f"  {'counter':<28} {'value':>12}")
    for counter in counters:
        lines.append(f"  {counter.name:<28} {int(counter.value):>12}")
    return "\n".join(lines)


def generate_report(
    *,
    fast: bool = False,
    include_porter: bool = True,
    include_extensions: bool = True,
) -> str:
    """Run the experiment suite and return a markdown report.

    ``fast`` restricts sweeps to representative functions so the whole
    report builds in roughly a minute; the full report takes several.
    """
    from repro.experiments import (
        checkpoint_perf,
        fig1_footprint,
        fig3_motivation,
        fig6_coldstart,
        fig7_performance,
        fig8_tiering,
        fig9_sensitivity,
        table1,
    )

    subset = ["float", "json", "bfs", "bert"] if fast else None
    out = io.StringIO()
    started = time.time()
    out.write("# CXLfork reproduction report (generated)\n")

    _section(out, "Table 1 — evaluation functions")
    out.write("```\n" + table1.format_rows(table1.run()) + "\n```\n")

    _section(out, "Figure 1 — footprint breakdown")
    rows = fig1_footprint.run(subset, invocations=32 if fast else 128)
    out.write("```\n" + fig1_footprint.format_rows(rows) + "\n```\n")

    _section(out, "Figure 3c — motivation (BERT)")
    out.write("```\n" + fig3_motivation.format_result(fig3_motivation.run()) + "\n```\n")

    _section(out, "Figure 6 — cold-start anatomy")
    out.write("```\n" + fig6_coldstart.format_rows(fig6_coldstart.run(subset)) + "\n```\n")

    _section(out, "Figure 7 — remote-fork performance and memory")
    rows = fig7_performance.run(subset)
    out.write("```\n" + fig7_performance.format_rows(rows) + "\n```\n\n")
    for key, value in fig7_performance.summarize(rows).items():
        out.write(f"* `{key}` = {value:.3f}\n")

    _section(out, "Figure 8 — tiering policies")
    rows = fig8_tiering.run(subset)
    out.write("```\n" + fig8_tiering.format_rows(rows) + "\n```\n\n")
    for key, value in fig8_tiering.summarize(rows).items():
        text = value if isinstance(value, bool) else f"{value:.3f}"
        out.write(f"* `{key}` = {text}\n")

    _section(out, "Figure 9 — CXL latency sensitivity")
    rows = fig9_sensitivity.run(
        functions=["float", "bert"] if fast else None,
        latencies=[400.0, 100.0] if fast else None,
    )
    out.write("```\n" + fig9_sensitivity.format_rows(rows) + "\n```\n")

    _section(out, "Checkpoint performance (§7.1)")
    rows = checkpoint_perf.run(subset)
    out.write("```\n" + checkpoint_perf.format_rows(rows) + "\n```\n\n")
    for key, value in checkpoint_perf.summarize(rows).items():
        out.write(f"* `{key}` = {value:.2f}\n")

    if include_porter:
        from repro.experiments import fig10_porter

        _section(out, "Figure 10 — CXLporter")
        config = fig10_porter.Fig10Config(
            total_rps=80 if fast else 150,
            duration_s=8 if fast else 15,
            memory_fractions=(1.0,) if fast else (1.0, 0.25),
        )
        rows = fig10_porter.run(config)
        out.write(
            "```\n"
            + fig10_porter.format_rows([r for r in rows if r.function == "ALL"])
            + "\n```\n\n"
        )
        for key, value in fig10_porter.summarize(rows).items():
            out.write(f"* `{key}` = {value:.3f}\n")

    if include_extensions:
        from repro.experiments import failure, scalability

        _section(out, "Extension — node-failure survival")
        out.write("```\n" + failure.format_rows(failure.run()) + "\n```\n")

        _section(out, "Extension — bandwidth-aware scaling")
        rows = scalability.run(node_counts=(2, 8) if fast else (2, 4, 8, 16))
        out.write("```\n" + scalability.format_rows(rows) + "\n```\n")

    elapsed = time.time() - started
    out.write(f"\n---\n*Report generated in {elapsed:.0f} s of wall time.*\n")
    return out.getvalue()


def main() -> None:  # pragma: no cover - CLI convenience
    import sys

    fast = "--full" not in sys.argv
    print(generate_report(fast=fast))


if __name__ == "__main__":  # pragma: no cover
    main()
