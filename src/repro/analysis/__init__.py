"""Analysis helpers: statistics, table formatting, and report generation."""

from repro.analysis.dedup import DedupReport, measure_dedup
from repro.analysis.plotting import ascii_bar_chart, ascii_series
from repro.analysis.report import generate_report
from repro.analysis.stats import geometric_mean, percentile, summary_stats
from repro.analysis.tables import format_table

__all__ = [
    "DedupReport",
    "measure_dedup",
    "ascii_bar_chart",
    "ascii_series",
    "geometric_mean",
    "percentile",
    "summary_stats",
    "format_table",
    "generate_report",
]
