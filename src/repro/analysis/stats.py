"""Small statistics helpers used by experiments and reports."""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np


def geometric_mean(values: Iterable) -> float:
    """Geometric mean of the positive entries (0.0 if none)."""
    vals = [float(v) for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def percentile(values: Iterable, q: float) -> Optional[float]:
    """The q-th percentile, or None for an empty input."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return None
    return float(np.percentile(arr, q))


def summary_stats(values: Iterable) -> dict:
    """min / p50 / mean / p99 / max of a sample (empty dict if no data)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {}
    return {
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "mean": float(arr.mean()),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
        "count": int(arr.size),
    }


__all__ = ["geometric_mean", "percentile", "summary_stats"]
