"""Pod-wide deduplication accounting.

CXLfork's memory story is cluster-level: read-only state lives once on the
CXL device and is mapped by every clone on every node.  This module
measures that from a live pod: how much local DRAM each node holds, how
many CXL bytes each checkpoint serves, how many sharers each has, and what
the same residency would have cost without sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.units import MIB


@dataclass
class DedupReport:
    """A snapshot of pod-wide memory placement."""

    local_bytes_per_node: dict = field(default_factory=dict)
    #: Bytes on the device mapped by at least one process.
    cxl_shared_bytes: int = 0
    #: Sum over processes of the CXL bytes each maps (what private copies
    #: would have cost in local DRAM).
    cxl_mapped_total_bytes: int = 0
    process_count: int = 0

    @property
    def dedup_saved_bytes(self) -> int:
        """Local DRAM avoided by sharing instead of copying."""
        return max(0, self.cxl_mapped_total_bytes - self.cxl_shared_bytes)

    @property
    def dedup_factor(self) -> float:
        """Average number of sharers per shared byte (1.0 = no sharing)."""
        if self.cxl_shared_bytes == 0:
            return 1.0
        return self.cxl_mapped_total_bytes / self.cxl_shared_bytes

    def format(self) -> str:
        lines = ["pod-wide memory placement:"]
        for node, nbytes in sorted(self.local_bytes_per_node.items()):
            lines.append(f"  {node:<8} local DRAM in use: {nbytes / MIB:10.1f} MiB")
        lines.append(
            f"  shared on CXL: {self.cxl_shared_bytes / MIB:10.1f} MiB, "
            f"mapped {self.dedup_factor:.1f}x on average "
            f"by {self.process_count} processes"
        )
        lines.append(
            f"  deduplication saved {self.dedup_saved_bytes / MIB:10.1f} MiB "
            f"of local DRAM"
        )
        return "\n".join(lines)


def measure_dedup(nodes) -> DedupReport:
    """Walk every live process on ``nodes`` and account placement.

    The shared-bytes figure counts each mapped CXL frame once pod-wide;
    the mapped-total counts it once per mapping process.
    """
    report = DedupReport()
    shared_frames: set = set()
    for node in nodes:
        report.local_bytes_per_node[node.name] = node.dram_used_bytes
        for task in node.kernel.tasks():
            mapped_cxl = task.mm.cxl_mapped_pages()
            if mapped_cxl == 0 and task.mm.mapped_pages() == 0:
                continue
            report.process_count += 1
            report.cxl_mapped_total_bytes += mapped_cxl * 4096
            if mapped_cxl:
                from repro.cxl.device import CXL_FRAME_BASE

                frames = task.mm.collect_frames(lambda f: f >= CXL_FRAME_BASE)
                shared_frames.update(int(f) for f in frames)
    report.cxl_shared_bytes = len(shared_frames) * 4096
    return report


__all__ = ["DedupReport", "measure_dedup"]
