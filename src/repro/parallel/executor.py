"""Deterministic fan-out executor: shard a sweep grid, merge bit-identically.

The contract, in one sentence: ``run_points(points, worker, jobs=N)``
returns exactly what ``[worker(p) for p in points]`` returns, for every
``N``.  Three rules enforce it:

1. **Shared-nothing workers.**  Each point runs in a fresh forked worker
   process (or inline, for ``jobs=1``) and builds its own pod; no
   simulator object is shared between points.  Workers must be top-level
   (picklable-by-reference) functions taking one
   :class:`~repro.parallel.points.SweepPoint`.
2. **Spec-derived randomness.**  Any RNG a point needs is seeded from the
   point's canonical key (see :func:`repro.parallel.points.derive_seed`)
   or from explicit spec parameters — never from worker identity or
   completion order.
3. **Canonical-order merge.**  Results are collected in the order the
   points were given, not the order workers finish, so the output list —
   and therefore ``repro.bench.results_digest`` over it — is byte-identical
   to the serial run.

The bench harness closes the loop: a parallel timed run's digest is
cross-checked against the serial run's, so a scheduling-order leak into
results is a hard failure, not noise.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, List

from repro.parallel.points import SweepPoint


def default_jobs() -> int:
    """Worker count when the caller asks for ``jobs=None``: one per CPU."""
    return os.cpu_count() or 1


def run_points(
    points: Iterable[SweepPoint],
    worker: Callable[[SweepPoint], Any],
    *,
    jobs: int = 1,
) -> List[Any]:
    """Run ``worker`` over every point; return results in point order.

    ``jobs <= 1`` runs inline (no processes, no pickling) — the reference
    serial path.  ``jobs > 1`` fans points out to a
    :class:`~concurrent.futures.ProcessPoolExecutor`; submission happens in
    canonical (given) order and results are merged back in that same
    order, so completion order can never leak into the output.
    ``jobs=None`` means one worker per CPU.

    A worker exception cancels the remaining futures and re-raises in the
    caller, tagged with the failing point's label.
    """
    points = list(points)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(points) <= 1:
        return [worker(point) for point in points]

    from concurrent.futures import ProcessPoolExecutor

    results: List[Any] = []
    with ProcessPoolExecutor(max_workers=min(jobs, len(points))) as pool:
        futures = [(point, pool.submit(worker, point)) for point in points]
        try:
            for point, future in futures:
                try:
                    results.append(future.result())
                except Exception as exc:
                    if hasattr(exc, "add_note"):  # 3.11+
                        exc.add_note(f"while running sweep point {point.label()}")
                    raise
        finally:
            for _, future in futures:
                future.cancel()
    return results


def run_points_flat(
    points: Iterable[SweepPoint],
    worker: Callable[[SweepPoint], List[Any]],
    *,
    jobs: int = 1,
) -> List[Any]:
    """`run_points` for workers that return a list of rows per point.

    The per-point row lists are concatenated in canonical point order —
    the flattened result is identical to the serial nested loop.
    """
    merged: List[Any] = []
    for rows in run_points(points, worker, jobs=jobs):
        merged.extend(rows)
    return merged


__all__ = ["default_jobs", "run_points", "run_points_flat"]
