"""Self-contained sweep points: the unit of deterministic fan-out.

Every experiment in the repro is an embarrassingly-parallel grid —
functions × mechanisms (fig7), arms × RPS (fig10 / cluster-scale),
mechanisms × crash timings (failure-sweep), policies × node counts
(scalability).  A :class:`SweepPoint` captures ONE cell of such a grid as
pure arguments: everything a worker needs to rebuild the cell's pod from
scratch, and nothing it could accidentally share with a sibling.

Two properties make points safe to scatter across processes:

* **Self-containment** — the point carries only picklable spec values
  (names, numbers, frozen config dataclasses).  The worker builds its own
  pod, fabric, and RNGs; no live simulator object ever crosses a process
  boundary.
* **Canonical identity** — :attr:`SweepPoint.canonical_key` is a stable
  JSON encoding of the experiment name and sorted parameters.  Anything a
  point derives pseudo-randomly MUST come from this key (via
  :func:`derive_seed` / :meth:`SweepPoint.derive_seed`), never from worker
  identity, submission index, or completion order — that is what makes a
  ``--jobs 8`` run bit-identical to ``--jobs 1``.
"""

from __future__ import annotations

import dataclasses
import json
from hashlib import sha256
from typing import Any, Tuple

_MISSING = object()


def canonical_params(obj: Any) -> Any:
    """JSON-stable view of a parameter value (dataclasses, enums, numpy)."""
    from repro.bench import _canonical

    return _canonical(obj)


def derive_seed(key: str, base: int = 0, *, bits: int = 63) -> int:
    """Derive a point-local RNG seed from a canonical key.

    The derivation is a pure function of ``(base, key)`` — independent of
    process identity, submission order, and completion order — so a worker
    pool produces the same streams as a serial loop no matter how the grid
    is sharded.  ``bits`` bounds the result (default 63: any numpy seed).
    """
    if bits < 1 or bits > 256:
        raise ValueError(f"bits must be in [1, 256], got {bits}")
    digest = sha256(f"{base}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest, "big") >> (256 - bits)


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One cell of an experiment grid, as a pure-argument spec.

    ``params`` is a tuple of sorted ``(name, value)`` pairs so two points
    built from the same keyword arguments compare (and encode) equal
    regardless of keyword order.
    """

    experiment: str
    params: Tuple[Tuple[str, Any], ...]

    @classmethod
    def make(cls, experiment: str, **params: Any) -> "SweepPoint":
        return cls(experiment=experiment, params=tuple(sorted(params.items())))

    def param(self, name: str, default: Any = _MISSING) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        if default is _MISSING:
            raise KeyError(
                f"point {self.experiment!r} has no parameter {name!r} "
                f"(has: {[k for k, _ in self.params]})"
            )
        return default

    @property
    def canonical_key(self) -> str:
        """Stable JSON identity: experiment name + canonicalized params."""
        return json.dumps(
            [self.experiment, canonical_params(dict(self.params))],
            sort_keys=True,
            separators=(",", ":"),
        )

    def derive_seed(self, base: int = 0, *, bits: int = 63) -> int:
        """Point-local seed: a pure function of ``(base, canonical_key)``."""
        return derive_seed(self.canonical_key, base, bits=bits)

    def label(self) -> str:
        """Short human-readable tag for logs and error messages."""
        parts = ",".join(
            f"{k}={v}" for k, v in self.params
            if isinstance(v, (str, int, float, bool))
        )
        return f"{self.experiment}[{parts}]"


__all__ = ["SweepPoint", "canonical_params", "derive_seed"]
