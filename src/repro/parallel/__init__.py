"""repro.parallel — deterministic parallel sweep execution.

Experiments declare their grid as a list of self-contained
:class:`SweepPoint` specs; :func:`run_points` shards them across
shared-nothing worker processes and merges results in canonical point
order, so the output (and its bench digest) is bit-identical to the
serial run.  See :mod:`repro.parallel.executor` for the contract.
"""

from repro.parallel.executor import default_jobs, run_points, run_points_flat
from repro.parallel.points import SweepPoint, canonical_params, derive_seed

__all__ = [
    "SweepPoint",
    "canonical_params",
    "default_jobs",
    "derive_seed",
    "run_points",
    "run_points_flat",
]
